//! Integration tests for the message-granularity interleaved sweep:
//! thread-count determinism, cross-session interleaving, transport
//! accounting and fleet-level revocation.

use ecq_cert::CertError;
use ecq_fleet::{FleetConfig, FleetCoordinator, FleetError, SweepOptions, TransportKind};
use ecq_proto::ProtocolError;

fn config(devices: usize, seed: u64) -> FleetConfig {
    FleetConfig::new()
        .devices(devices)
        .ca_shards(3)
        .enroll_batch(8)
        .seed(seed)
}

fn sweep(devices: usize, seed: u64, opts: &SweepOptions) -> FleetCoordinator {
    let mut fleet = FleetCoordinator::new(config(devices, seed));
    fleet.enroll_all().unwrap();
    fleet.interleaved_sweep(opts).unwrap();
    fleet
}

#[test]
fn report_is_bit_identical_across_thread_counts() {
    let reports: Vec<_> = [1usize, 2, 8]
        .iter()
        .map(|&threads| {
            let fleet = sweep(
                48,
                0xD15C,
                &SweepOptions::new()
                    .threads(threads)
                    .transport(TransportKind::Simnet),
            );
            fleet.report().clone()
        })
        .collect();
    assert_eq!(reports[0], reports[1], "1 vs 2 workers");
    assert_eq!(reports[0], reports[2], "1 vs 8 workers");
    assert!(reports[0].key_digest.is_some());
    assert_eq!(reports[0].handshakes, reports[0].sessions);
}

#[test]
fn poisoned_session_fails_closed_and_counts_in_report() {
    let mut fleet = FleetCoordinator::new(config(16, 0xB015));
    fleet.enroll_all().unwrap();
    let err = fleet
        .interleaved_sweep(&SweepOptions::new().poison(2))
        .expect_err("a poisoned session surfaces as a sweep failure");
    assert_eq!(
        err,
        FleetError::Protocol(ProtocolError::Poisoned),
        "the typed fail-closed error, not a panic"
    );
    let r = fleet.report();
    assert_eq!(r.poisoned, 1);
    assert_eq!(r.handshakes, r.sessions - 1, "siblings complete");
    assert!(r.key_digest.is_some(), "the report still finalizes");
}

#[test]
fn same_seed_reproduces_and_seeds_differ() {
    let opts = SweepOptions::default();
    let a = sweep(24, 7, &opts);
    let b = sweep(24, 7, &opts);
    let c = sweep(24, 8, &opts);
    assert_eq!(a.report(), b.report());
    assert_ne!(
        a.report().key_digest,
        c.report().key_digest,
        "different seed must derive different keys"
    );
}

#[test]
fn messages_are_delivered_at_wire_granularity() {
    let fleet = sweep(24, 0xBEEF, &SweepOptions::default());
    let r = fleet.report();
    let sessions = r.sessions as u64;
    assert!(sessions > 0);
    // Four STS messages per handshake, 491 B total (Table II).
    assert_eq!(r.messages, 4 * sessions);
    assert_eq!(r.wire_bytes, 491 * sessions);
    // A1(80+4)→2 frames, B1(245+4)→4, A2(165+4)→3, B2(1+4)→1.
    assert_eq!(r.can_frames, 10 * sessions);
    assert!(r.handshake_makespan_us > 0);
}

#[test]
fn handshakes_interleave_across_sessions() {
    // One worker, so the delivery log is one scheduler's pop order.
    let fleet = sweep(
        24,
        0xCAFE,
        &SweepOptions::new()
            .threads(1)
            .transport(TransportKind::Simnet),
    );
    let log = fleet.last_deliveries();
    assert_eq!(log.len(), 4 * fleet.report().sessions);
    // Session 0's four messages must NOT be contiguous: other sessions'
    // messages are delivered between them (message-granularity
    // interleaving, the whole point of the transport rework).
    let positions: Vec<usize> = log
        .iter()
        .enumerate()
        .filter(|(_, d)| d.session == 0)
        .map(|(i, _)| i)
        .collect();
    assert_eq!(positions.len(), 4);
    assert!(
        positions[3] - positions[0] > 3,
        "session 0 ran atomically: positions {positions:?}"
    );
    // And virtual time never runs backwards in the log.
    assert!(log.windows(2).all(|w| w[0].at_us <= w[1].at_us));
}

#[test]
fn keys_are_transport_independent_but_makespan_is_not() {
    // The derived keys depend only on the endpoint RNG streams; the
    // link model only decides *when* messages move.
    let simnet = sweep(24, 0xF00D, &SweepOptions::default());
    let channel = sweep(
        24,
        0xF00D,
        &SweepOptions::new()
            .threads(1)
            .transport(TransportKind::Channel { latency_us: 0 }),
    );
    assert_eq!(simnet.report().key_digest, channel.report().key_digest);
    assert_eq!(channel.report().can_frames, 0);
    assert!(simnet.report().can_frames > 0);
    assert!(simnet.report().handshake_makespan_us > channel.report().handshake_makespan_us);
}

#[test]
fn socket_transport_derives_the_same_keys_as_channel() {
    // Real OS sockets under the fleet sweep: key material and session
    // outcomes must match the in-process channel transport exactly —
    // only the link model differs, never the cryptography.
    let channel = sweep(
        16,
        0x50C7,
        &SweepOptions::new()
            .threads(1)
            .transport(TransportKind::Channel { latency_us: 0 }),
    );
    let socket = sweep(
        16,
        0x50C7,
        &SweepOptions::new()
            .threads(1)
            .transport(TransportKind::Socket),
    );
    assert_eq!(channel.report().key_digest, socket.report().key_digest);
    assert_eq!(channel.report().handshakes, socket.report().handshakes);
    // Sockets carry whole messages: one wire frame each, no CAN-FD
    // segmentation.
    assert_eq!(socket.report().can_frames, socket.report().messages);
}

#[test]
fn pre_sweep_revocation_denies_only_the_revoked_pair() {
    let mut fleet = FleetCoordinator::new(config(24, 0xDEAD));
    fleet.enroll_all().unwrap();
    assert!(fleet.revoke_device(0));
    assert!(!fleet.revoke_device(0), "second revocation is a no-op");
    fleet.interleaved_sweep(&SweepOptions::default()).unwrap();
    let r = fleet.report();
    let denied: Vec<_> = fleet
        .sessions()
        .iter()
        .filter(|s| s.failure().is_some())
        .collect();
    assert_eq!(denied.len(), 1);
    assert!(denied[0].a == 0 || denied[0].b == 0);
    assert_eq!(
        *denied[0].failure().unwrap(),
        FleetError::Protocol(ProtocolError::Cert(CertError::Revoked))
    );
    assert!(denied[0].last_key().is_none());
    assert_eq!(r.denied_revoked, 1);
    assert_eq!(r.handshakes, r.sessions - 1);
    // Everyone else still established.
    for s in fleet.sessions().iter().filter(|s| s.failure().is_none()) {
        assert!(s.last_key().is_some());
    }
}

#[test]
fn mid_run_revocation_fails_subsequent_handshakes_only() {
    let mut fleet = FleetCoordinator::new(config(24, 0xACDC));
    fleet.enroll_all().unwrap();
    fleet.interleaved_sweep(&SweepOptions::default()).unwrap();
    assert_eq!(fleet.report().denied_revoked, 0);

    // Mid-run: every pair holds a key; now one device is compromised.
    assert!(fleet.revoke_device(1));
    fleet.run_epochs(2).unwrap();

    let revoked: Vec<_> = fleet
        .sessions()
        .iter()
        .filter(|s| s.a == 1 || s.b == 1)
        .collect();
    assert_eq!(revoked.len(), 1);
    // The sweep key it already held survives (forward secrecy protects
    // the past; revocation stops the future)…
    assert!(revoked[0].last_key().is_some());
    // …but its rekey handshakes were denied: no manager establishment.
    assert_eq!(revoked[0].rekey_count(), 0);
    assert_eq!(
        *revoked[0].failure().unwrap(),
        FleetError::Protocol(ProtocolError::Cert(CertError::Revoked))
    );
    // One denial per epoch tick.
    assert_eq!(fleet.report().denied_revoked, 2);
    // The rest of the fleet kept rekeying.
    for s in fleet.sessions().iter().filter(|s| !(s.a == 1 || s.b == 1)) {
        assert!(s.rekey_count() >= 1, "unrevoked sessions must proceed");
        assert!(s.failure().is_none());
    }
}

#[test]
fn streaming_sweep_reproduces_the_materialized_report() {
    // The bounded-memory pipeline (lazy enrollment + streamed
    // scheduling) must reproduce the materialized enroll_all +
    // interleaved_sweep report bit-for-bit, for any thread count and
    // any admission window.
    let reference = sweep(48, 0x57AE, &SweepOptions::default()).report().clone();
    assert!(reference.key_digest.is_some());
    for (threads, window) in [(1, 2), (2, 4), (8, 16), (3, usize::MAX)] {
        let opts = SweepOptions::new()
            .threads(threads)
            .transport(TransportKind::Simnet)
            .max_inflight(window);
        let mut fleet = FleetCoordinator::new(config(48, 0x57AE));
        fleet.streaming_sweep(&opts).unwrap();
        assert_eq!(
            *fleet.report(),
            reference,
            "streaming report differs (threads {threads}, window {window})"
        );
        assert!(
            fleet.sessions().is_empty(),
            "streaming keeps no per-session state"
        );
        assert!(
            fleet.devices().iter().all(|d| !d.is_enrolled()),
            "streaming never materializes roster credentials"
        );
    }
}

#[test]
fn finite_window_interleaved_sweep_matches_materialized() {
    // interleaved_sweep with a finite max_inflight routes through the
    // streaming scheduler but still materializes sessions; both the
    // report and per-session keys must be unchanged.
    let reference = sweep(32, 0x11AB, &SweepOptions::default());
    let windowed = sweep(32, 0x11AB, &SweepOptions::new().threads(2).max_inflight(3));
    assert_eq!(reference.report(), windowed.report());
    let ka: Vec<_> = reference
        .sessions()
        .iter()
        .map(|s| *s.last_key().unwrap().as_bytes())
        .collect();
    let kb: Vec<_> = windowed
        .sessions()
        .iter()
        .map(|s| *s.last_key().unwrap().as_bytes())
        .collect();
    assert_eq!(ka, kb);
}

#[test]
fn streaming_sweep_denies_revoked_pairs_like_materialized() {
    let mut reference = FleetCoordinator::new(config(24, 0xDEAD));
    reference.enroll_all().unwrap();
    assert!(reference.revoke_device(0));
    reference
        .interleaved_sweep(&SweepOptions::default())
        .unwrap();

    let mut streamed = FleetCoordinator::new(config(24, 0xDEAD));
    // Revocation is keyed by certificate serial; enrollment is
    // deterministic, so a throwaway coordinator yields the serial the
    // streaming run will (re)derive for device 0.
    let serial = {
        let mut probe = FleetCoordinator::new(config(24, 0xDEAD));
        probe.enroll_all().unwrap();
        probe.devices()[0].credentials.as_ref().unwrap().cert.serial
    };
    streamed.revocation_list_mut().revoke(serial);
    streamed
        .streaming_sweep(&SweepOptions::new().threads(2).max_inflight(4))
        .unwrap();
    assert_eq!(streamed.report(), reference.report());
    assert_eq!(streamed.report().denied_revoked, 1);
}

#[test]
fn mixed_thread_and_transport_runs_share_keys() {
    // Thread count must not leak into key material either.
    let one = sweep(30, 42, &SweepOptions::default());
    let eight = sweep(
        30,
        42,
        &SweepOptions::new()
            .threads(8)
            .transport(TransportKind::Simnet),
    );
    let ka: Vec<_> = one
        .sessions()
        .iter()
        .map(|s| *s.last_key().unwrap().as_bytes())
        .collect();
    let kb: Vec<_> = eight
        .sessions()
        .iter()
        .map(|s| *s.last_key().unwrap().as_bytes())
        .collect();
    assert_eq!(ka, kb);
}
