//! The fleet coordinator: batch enrollment, concurrent handshakes and
//! policy-driven rekey epochs over the deterministic scheduler.

use crate::device::SimDevice;
use crate::interleave::{self, DeliveryRecord, SessionResult, SessionWork, SweepOptions};
use crate::pool::CaPool;
use crate::report::FleetReport;
use crate::scheduler::{micros_from_ms, EventScheduler, VirtualTime};
use crate::FleetError;
use ecq_cert::requester::CertRequester;
use ecq_cert::{CertError, RevocationList};
use ecq_crypto::sha256::Sha256;
use ecq_crypto::HmacDrbg;
use ecq_devices::{DevicePreset, DeviceProfile};
use ecq_proto::{Credentials, ProtocolError, ProtocolKind, SessionKey};
use ecq_sts::{RekeyPolicy, SessionManager, StsConfig, StsVariant};
use std::collections::VecDeque;

/// Parameters of a fleet run. Everything — device count, sharding,
/// batching, validity, rekey policy — is explicit so a `(config, seed)`
/// pair fully determines the run.
///
/// The struct is `#[non_exhaustive]`: build one with
/// [`FleetConfig::new`] (or `default()`) and refine it with the
/// builder methods, e.g.
/// `FleetConfig::new().devices(64).seed(7).variant(StsVariant::OptimizationII)`.
#[derive(Clone, Copy, Debug)]
#[non_exhaustive]
pub struct FleetConfig {
    /// Devices in the roster.
    pub devices: usize,
    /// Independent CA shards provisioning the roster.
    pub ca_shards: usize,
    /// Certificates per [`ecq_cert::ca::CertificateAuthority::issue_batch`] call.
    pub enroll_batch: usize,
    /// Certificate validity start (deployment seconds).
    pub valid_from: u32,
    /// Certificate validity end (deployment seconds).
    pub valid_to: u32,
    /// Rekey policy every pair session runs under.
    pub rekey: RekeyPolicy,
    /// STS execution-schedule variant.
    pub variant: StsVariant,
    /// Master seed; all shard, device and session DRBGs derive from it.
    pub seed: u64,
}

impl Default for FleetConfig {
    /// 1024 devices over 4 shards, 64-certificate batches, one-day
    /// certificates, hourly/10k-message rekey.
    fn default() -> Self {
        FleetConfig {
            devices: 1024,
            ca_shards: 4,
            enroll_batch: 64,
            valid_from: 0,
            valid_to: 86_400,
            rekey: RekeyPolicy::default(),
            variant: StsVariant::Conventional,
            seed: 0xF1EE7,
        }
    }
}

impl FleetConfig {
    /// The default configuration, as a builder starting point.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the roster size.
    #[must_use]
    pub fn devices(mut self, devices: usize) -> Self {
        self.devices = devices;
        self
    }

    /// Sets the number of independent CA shards.
    #[must_use]
    pub fn ca_shards(mut self, ca_shards: usize) -> Self {
        self.ca_shards = ca_shards;
        self
    }

    /// Sets the issuance batch size.
    #[must_use]
    pub fn enroll_batch(mut self, enroll_batch: usize) -> Self {
        self.enroll_batch = enroll_batch;
        self
    }

    /// Sets the certificate validity window.
    #[must_use]
    pub fn validity(mut self, valid_from: u32, valid_to: u32) -> Self {
        self.valid_from = valid_from;
        self.valid_to = valid_to;
        self
    }

    /// Sets the rekey policy.
    #[must_use]
    pub fn rekey(mut self, rekey: RekeyPolicy) -> Self {
        self.rekey = rekey;
        self
    }

    /// Sets the STS execution-schedule variant.
    #[must_use]
    pub fn variant(mut self, variant: StsVariant) -> Self {
        self.variant = variant;
        self
    }

    /// Sets the master seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Per-pair sweep material prepared at session creation, index-aligned
/// with the coordinator's sessions: the wire seed plus the credential
/// clones and presets the interleaved sweep moves into its endpoints
/// (so the sweep never has to look devices up again).
struct PairMaterial {
    seed: [u8; 32],
    creds_a: Credentials,
    creds_b: Credentials,
    preset_a: DevicePreset,
    preset_b: DevicePreset,
}

/// One managed pair session between two enrolled devices of the same
/// shard.
pub struct PairSession {
    /// Roster index of the initiating device.
    pub a: usize,
    /// Roster index of the responding device.
    pub b: usize,
    manager: SessionManager,
    last_key: Option<SessionKey>,
    failure: Option<FleetError>,
}

impl PairSession {
    /// Completed handshakes of this session.
    pub fn rekey_count(&self) -> u64 {
        self.manager.rekey_count()
    }

    /// The most recent session key, once established.
    pub fn last_key(&self) -> Option<&SessionKey> {
        self.last_key.as_ref()
    }

    /// Why this session most recently failed (e.g.
    /// [`ecq_cert::CertError::Revoked`] after a mid-run revocation),
    /// if it did.
    pub fn failure(&self) -> Option<&FleetError> {
        self.failure.as_ref()
    }
}

enum EnrollEvent {
    /// The shard's CA starts its next `issue_batch`.
    Batch { shard: usize },
}

enum SessionEvent {
    Handshake { session: usize },
    RekeyTick { session: usize },
}

/// Drives N simulated devices through the full paper lifecycle —
/// sharded batch ECQV enrollment, concurrent STS establishment,
/// policy-driven rekey epochs — on a virtual timeline.
///
/// # Example
///
/// ```
/// use ecq_fleet::{FleetConfig, FleetCoordinator};
///
/// let config = FleetConfig::new().devices(16).ca_shards(2);
/// let mut fleet = FleetCoordinator::new(config);
/// let report = fleet.run_lifecycle(2).unwrap();
/// assert_eq!(report.enrolled, 16);
/// assert!(report.rekeys > 0);
/// ```
pub struct FleetCoordinator {
    config: FleetConfig,
    pool: CaPool,
    devices: Vec<SimDevice>,
    device_seeds: Vec<[u8; 32]>,
    shard_rngs: Vec<HmacDrbg>,
    session_rng: HmacDrbg,
    sessions: Vec<PairSession>,
    gateway: DeviceProfile,
    crl: RevocationList,
    last_deliveries: Vec<DeliveryRecord>,
    last_frame_logs: Vec<(usize, Vec<ecq_simnet::FrameRecord>)>,
    report: FleetReport,
}

impl FleetCoordinator {
    /// Builds the roster and CA pool; no work happens until
    /// [`Self::enroll_all`].
    pub fn new(config: FleetConfig) -> Self {
        let mut master = HmacDrbg::from_seed(config.seed);
        let pool = CaPool::new(config.ca_shards, &mut master);
        let shard_rngs = (0..pool.shard_count())
            .map(|_| HmacDrbg::new(&master.bytes32(), b"fleet-shard"))
            .collect();
        let mut devices = Vec::with_capacity(config.devices);
        let mut device_seeds = Vec::with_capacity(config.devices);
        for i in 0..config.devices {
            let mut device = SimDevice::new(i, 0);
            device.shard = pool.shard_for(&device.id);
            devices.push(device);
            device_seeds.push(master.bytes32());
        }
        let mut report = FleetReport {
            devices: config.devices,
            shards: pool.shard_count(),
            ..FleetReport::default()
        };
        for d in &devices {
            *report.per_preset.entry(d.preset).or_insert(0) += 1;
        }
        FleetCoordinator {
            config,
            pool,
            devices,
            device_seeds,
            shard_rngs,
            session_rng: HmacDrbg::new(&master.bytes32(), b"fleet-sessions"),
            sessions: Vec::new(),
            gateway: DevicePreset::RaspberryPi4.profile(),
            crl: RevocationList::new(),
            last_deliveries: Vec::new(),
            last_frame_logs: Vec::new(),
            report,
        }
    }

    /// The device roster.
    pub fn devices(&self) -> &[SimDevice] {
        &self.devices
    }

    /// Overrides every roster entry to simulate `preset` (homogeneous
    /// fleet). Presets only drive the virtual cost model, so this is
    /// safe at any point; call it before [`Self::enroll_all`] for the
    /// makespans to be consistent across phases.
    pub fn set_preset_all(&mut self, preset: DevicePreset) {
        for d in &mut self.devices {
            d.preset = preset;
        }
        self.report.per_preset.clear();
        self.report.per_preset.insert(preset, self.devices.len());
    }

    /// The pair sessions created by [`Self::handshake_sweep`].
    pub fn sessions(&self) -> &[PairSession] {
        &self.sessions
    }

    /// The running report.
    pub fn report(&self) -> &FleetReport {
        &self.report
    }

    /// Virtual CA-side cost of issuing one certificate on the gateway:
    /// the `k·G` blinding (keygen), the serial draw, and the two-block
    /// certificate hash.
    fn issue_cost_ms(&self) -> f64 {
        let c = &self.gateway.costs;
        c.keygen_ms + c.rng32_ms + 2.0 * c.hash_block_ms
    }

    /// Virtual device-side cost of finishing an enrollment on `preset`:
    /// request keygen, eq. (1) public-key reconstruction, and the
    /// `d_U·G` possession check.
    fn reconstruct_cost_ms(preset: DevicePreset) -> f64 {
        let c = preset.profile().costs;
        2.0 * c.keygen_ms + c.recon_ms
    }

    /// Virtual duration of one STS handshake between two presets: the
    /// paper's Table I pair time for the configured variant, gated by
    /// the slower board.
    fn handshake_cost_ms(&self, a: DevicePreset, b: DevicePreset) -> f64 {
        let kind = match self.config.variant {
            StsVariant::Conventional => ProtocolKind::Sts,
            StsVariant::OptimizationI => ProtocolKind::StsOptI,
            StsVariant::OptimizationII => ProtocolKind::StsOptII,
        };
        a.paper_table1(kind).max(b.paper_table1(kind))
    }

    /// Deployment-clock seconds corresponding to a virtual timestamp.
    fn deploy_secs(&self, at: VirtualTime) -> u32 {
        self.config
            .valid_from
            .saturating_add((at / 1_000_000) as u32)
    }

    /// Batch-enrolls every device against its CA shard.
    ///
    /// Shards run concurrently on the virtual timeline; within a shard
    /// the CA serializes `issue_batch` calls of `enroll_batch`
    /// certificates each. A device's enrollment completes when its
    /// batch is issued *and* the device finished its own key
    /// reconstruction (concurrent across devices).
    ///
    /// # Errors
    ///
    /// [`FleetError::Cert`] when issuance or reconstruction fails
    /// (impossible for well-formed rosters).
    pub fn enroll_all(&mut self) -> Result<(), FleetError> {
        // Shard worklists in roster order.
        let mut worklists: Vec<Vec<usize>> = vec![Vec::new(); self.pool.shard_count()];
        for d in &self.devices {
            worklists[d.shard].push(d.index);
        }
        let mut cursors = vec![0usize; worklists.len()];
        let mut scheduler = EventScheduler::new();
        for (shard, list) in worklists.iter().enumerate() {
            if !list.is_empty() {
                scheduler.schedule_at(0, EnrollEvent::Batch { shard });
            }
        }
        let per_cert_us = micros_from_ms(self.issue_cost_ms());
        let mut makespan: VirtualTime = 0;
        while let Some((at, EnrollEvent::Batch { shard })) = scheduler.next_event() {
            let list = &worklists[shard];
            let start = cursors[shard];
            let end = (start + self.config.enroll_batch.max(1)).min(list.len());
            let chunk = &list[start..end];
            cursors[shard] = end;

            // Device side: fresh request secrets from per-device DRBGs.
            let requesters: Vec<CertRequester> = chunk
                .iter()
                .map(|&i| {
                    let mut rng = HmacDrbg::new(&self.device_seeds[i], b"fleet-requester");
                    CertRequester::generate(self.devices[i].id, &mut rng)
                })
                .collect();
            let requests: Vec<_> = requesters.iter().map(|r| r.request()).collect();

            // CA side: one amortized batch issuance.
            let ca = self.pool.shard(shard);
            let issued = ca.issue_batch(
                &requests,
                self.config.valid_from,
                self.config.valid_to,
                &mut self.shard_rngs[shard],
            )?;
            let ca_done = at + per_cert_us * chunk.len() as VirtualTime;

            // Device side: one shared inversion for the whole batch's
            // eq. (1) reconstructions (the device-side mirror of
            // `issue_batch`'s amortized issuance).
            let keys = CertRequester::reconstruct_batch(&requesters, &issued, &ca.public_key())?;
            for ((&i, cert), keys) in chunk.iter().zip(&issued).zip(keys) {
                self.devices[i].credentials = Some(Box::new(Credentials {
                    id: self.devices[i].id,
                    cert: cert.certificate,
                    keys,
                    ca_public: ca.public_key(),
                }));
                let device_done =
                    ca_done + micros_from_ms(Self::reconstruct_cost_ms(self.devices[i].preset));
                makespan = makespan.max(device_done);
                self.report.enrolled += 1;
            }
            self.report.enroll_batches += 1;
            if cursors[shard] < list.len() {
                scheduler.schedule_at(ca_done, EnrollEvent::Batch { shard });
            }
        }
        self.report.enroll_makespan_us = makespan;
        Ok(())
    }

    /// Pairs consecutive enrolled devices within each shard, creating
    /// one managed session per pair; per-pair seeds are drawn from the
    /// session DRBG in session-index order (so RNG streams do not
    /// depend on how a later sweep shards work across threads).
    /// Returns the per-pair sweep material (seed, credential clones and
    /// presets), index-aligned with `self.sessions`.
    ///
    /// # Panics
    ///
    /// Panics when sessions already exist: each coordinator runs
    /// exactly one establishment sweep (atomic or interleaved).
    fn create_sessions(&mut self) -> Vec<PairMaterial> {
        assert!(
            self.sessions.is_empty(),
            "an establishment sweep runs once per coordinator"
        );
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); self.pool.shard_count()];
        for d in &self.devices {
            if let Some(list) = by_shard.get_mut(d.shard) {
                if d.is_enrolled() {
                    list.push(d.index);
                }
            }
        }
        let mut material = Vec::new();
        for list in &by_shard {
            for pair in list.chunks_exact(2) {
                let (a, b) = (pair[0], pair[1]);
                // Draw the seed before any fail-closed skip so later
                // pairs keep their RNG streams either way.
                let pair_seed = self.session_rng.bytes32();
                let creds = |i: usize| {
                    self.devices
                        .get(i)
                        .and_then(|d| d.credentials.clone().map(|c| (*c, d.preset)))
                };
                let (Some((creds_a, preset_a)), Some((creds_b, preset_b))) = (creds(a), creds(b))
                else {
                    // Unreachable for `by_shard` pairs (enrollment
                    // checked above); skip the pair rather than panic.
                    continue;
                };
                let manager = SessionManager::new(
                    creds_a.clone(),
                    creds_b.clone(),
                    self.config.rekey,
                    StsConfig {
                        now: self.config.valid_from,
                        variant: self.config.variant,
                    },
                    HmacDrbg::new(&pair_seed, b"fleet-pair"),
                );
                self.sessions.push(PairSession {
                    a,
                    b,
                    manager,
                    last_key: None,
                    failure: None,
                });
                material.push(PairMaterial {
                    seed: pair_seed,
                    creds_a,
                    creds_b,
                    preset_a,
                    preset_b,
                });
            }
        }
        self.report.sessions = self.sessions.len();
        material
    }

    /// Whether either participant of `session` holds a revoked
    /// certificate. A participant whose revocation status cannot be
    /// checked (missing roster entry or credentials — unreachable for
    /// sessions built by [`Self::create_sessions`]) is treated as
    /// revoked: the denial is the fail-closed outcome.
    fn session_revoked(&self, session: usize) -> bool {
        let revoked = |i: usize| match self.devices.get(i).and_then(|d| d.credentials.as_ref()) {
            Some(c) => self.crl.is_revoked(c.cert.serial),
            None => true,
        };
        match self.sessions.get(session) {
            Some(s) => revoked(s.a) || revoked(s.b),
            None => true,
        }
    }

    /// Pairs devices like [`Self::handshake_sweep`] and establishes
    /// every pair's first session at **message granularity**: each STS
    /// wire message is delivered as its own scheduler event over the
    /// configured transport, so handshakes interleave on the virtual
    /// timeline, and sessions shard across
    /// [`SweepOptions::threads`] host workers (the report is
    /// bit-identical for any thread count — see
    /// [`crate::interleave`]).
    ///
    /// Sessions whose participants are on the revocation list are
    /// denied ([`ecq_cert::CertError::Revoked`] recorded on the
    /// session, [`FleetReport::denied_revoked`] counted) while the
    /// rest of the fleet completes.
    ///
    /// With a finite [`SweepOptions::max_inflight`] the sweep routes
    /// through the streaming scheduler: peak resident state is bounded
    /// by the admission window, the report stays bit-identical, and
    /// only the diagnostic per-worker delivery log
    /// ([`Self::last_deliveries`]) is dropped.
    ///
    /// # Errors
    ///
    /// [`FleetError::Protocol`] when a non-revocation handshake
    /// failure occurs (impossible for well-formed rosters).
    ///
    /// # Panics
    ///
    /// Panics when called after another establishment sweep.
    pub fn interleaved_sweep(&mut self, opts: &SweepOptions) -> Result<(), FleetError> {
        let material = self.create_sessions();
        let now = self.config.valid_from;
        let denied: Vec<bool> = (0..self.sessions.len())
            .map(|index| self.session_revoked(index))
            .collect();
        let work: Vec<SessionWork> = material
            .into_iter()
            .enumerate()
            .map(|(index, m)| SessionWork {
                index,
                creds_a: m.creds_a,
                creds_b: m.creds_b,
                preset_a: m.preset_a,
                preset_b: m.preset_b,
                wire_seed: m.seed,
                now,
                variant: self.config.variant,
                // A session with no recorded denial verdict is denied
                // (fail closed); unreachable for index-aligned work.
                denied: denied.get(index).copied().unwrap_or(true),
            })
            .collect();

        let (results, log, bus_traces) = if opts.max_inflight < work.len() {
            let total = work.len();
            let mut slots: Vec<Option<SessionResult>> = (0..total).map(|_| None).collect();
            let traces = interleave::run_sweep_streaming(work.into_iter(), total, opts, |i, r| {
                if let Some(slot) = slots.get_mut(i) {
                    *slot = Some(r);
                }
            });
            let results: Vec<SessionResult> = slots
                .into_iter()
                .map(|slot| {
                    slot.unwrap_or_else(|| {
                        // A group lost to a dead worker fails closed.
                        let mut r = SessionResult::empty();
                        r.failure = Some(ProtocolError::Poisoned);
                        r
                    })
                })
                .collect();
            (results, Vec::new(), traces)
        } else {
            interleave::run_sweep(work, opts)
        };
        self.last_deliveries = log;
        for trace in &bus_traces {
            self.report.faults.dropped += trace.counters.dropped;
            self.report.faults.corrupted += trace.counters.corrupted;
            self.report.faults.duplicated += trace.counters.duplicated;
            self.report.faults.held_back += trace.counters.held_back;
            self.report.faults.delayed += trace.counters.delayed;
            self.report.faults.replayed += trace.counters.replayed;
            self.report.faults.storm_frames += trace.counters.storm_frames;
            self.report.faults.isotp_errors += trace.counters.isotp_errors;
            self.report.faults.messages_lost += trace.counters.messages_lost;
        }
        self.last_frame_logs = bus_traces.into_iter().map(|t| (t.bus, t.frames)).collect();

        let mut digest = Sha256::new();
        let mut makespan: VirtualTime = 0;
        let mut first_failure: Option<FleetError> = None;
        for (index, result) in results.into_iter().enumerate() {
            let Some(session) = self.sessions.get_mut(index) else {
                // A result for a session that does not exist: nothing
                // to record it on (unreachable for index-aligned work).
                continue;
            };
            digest.update(&(index as u64).to_be_bytes());
            // A session's outcome: denial beats everything, then the
            // sweep's typed failure, then the key. A "completed"
            // session without a key lost its state somewhere — it
            // fails closed as poisoned instead of panicking.
            let failure = if denied.get(index).copied().unwrap_or(true) {
                self.report.denied_revoked += 1;
                session.failure = Some(FleetError::Protocol(ProtocolError::Cert(
                    CertError::Revoked,
                )));
                digest.update(b"denied:revoked");
                None
            } else if let Some(err) = result.failure {
                Some(err)
            } else if let Some(key) = result.key {
                session.last_key = Some(key);
                digest.update(key.as_bytes());
                self.report.handshakes += 1;
                None
            } else {
                Some(ProtocolError::Poisoned)
            };
            if let Some(err) = failure {
                session.failure = Some(FleetError::Protocol(err));
                first_failure.get_or_insert(FleetError::Protocol(err));
                if err == ProtocolError::Timeout {
                    self.report.timeouts += 1;
                }
                if err == ProtocolError::Poisoned {
                    self.report.poisoned += 1;
                }
                // The failure *mode* is part of the determinism
                // witness: a run that times out where another saw an
                // authentication failure must not digest equal.
                digest.update(b"failed:");
                digest.update(err.to_string().as_bytes());
            }
            makespan = makespan.max(result.end_us);
            self.report.messages += result.messages;
            self.report.wire_bytes += result.wire_bytes;
            self.report.can_frames += result.frames;
        }
        self.report.handshake_makespan_us = makespan;
        self.report.key_digest = Some(digest.finalize());
        match first_failure {
            Some(err) => Err(err),
            None => Ok(()),
        }
    }

    /// The bounded-memory establishment sweep for million-device
    /// fleets: enrollment, pairing and handshake simulation run as one
    /// pipeline. Pair material is *produced lazily* — each pull
    /// batch-enrolls just enough devices to emit the next pair — and
    /// streamed through the interleaved scheduler with at most
    /// [`SweepOptions::max_inflight`] sessions resident, so peak memory
    /// scales with the admission window and the roster skeleton, never
    /// with `devices × credentials`.
    ///
    /// The resulting [`FleetReport`] (including the key digest) is
    /// **bit-identical** to [`Self::enroll_all`] +
    /// [`Self::interleaved_sweep`] on the same `(config, seed)`, for
    /// any thread count and any window: per-shard enrollment chains,
    /// pairing order, and every DRBG stream are replicated exactly, and
    /// sessions are pure functions of their own work items (see
    /// [`crate::interleave`]). What the streaming path does *not* keep
    /// is the materialized state: the roster stays un-enrolled in
    /// memory, [`Self::sessions`] stays empty, and the diagnostic
    /// delivery log is dropped.
    ///
    /// # Errors
    ///
    /// [`FleetError::Cert`] when enrollment fails,
    /// [`FleetError::Protocol`] when a non-revocation handshake failure
    /// occurs (both impossible for well-formed rosters).
    ///
    /// # Panics
    ///
    /// Panics when called after another establishment sweep.
    pub fn streaming_sweep(&mut self, opts: &SweepOptions) -> Result<(), FleetError> {
        assert!(
            self.sessions.is_empty() && self.report.enrolled == 0,
            "an establishment sweep runs once per coordinator"
        );
        let mut worklists: Vec<Vec<usize>> = vec![Vec::new(); self.pool.shard_count()];
        for d in &self.devices {
            worklists[d.shard].push(d.index);
        }
        let total: usize = worklists.iter().map(|l| l.len() / 2).sum();
        let per_cert_us = micros_from_ms(self.issue_cost_ms());
        let mut producer = PairProducer {
            config: self.config,
            pool: &self.pool,
            devices: &self.devices,
            device_seeds: &self.device_seeds,
            crl: &self.crl,
            shard_rngs: &mut self.shard_rngs,
            session_rng: &mut self.session_rng,
            worklists,
            shard: 0,
            cursor: 0,
            shard_time: 0,
            next_index: 0,
            queue: VecDeque::new(),
            per_cert_us,
            enrolled: 0,
            enroll_batches: 0,
            enroll_makespan: 0,
            error: None,
        };

        // Streaming aggregation state: exactly the fold the materialized
        // path runs over its results vector, fed in strict index order.
        let mut digest = Sha256::new();
        let mut makespan: VirtualTime = 0;
        let mut first_failure: Option<FleetError> = None;
        let mut handshakes: usize = 0;
        let mut denied_revoked: u64 = 0;
        let mut timeouts: u64 = 0;
        let mut poisoned: u64 = 0;
        let mut messages: u64 = 0;
        let mut wire_bytes: u64 = 0;
        let mut can_frames: u64 = 0;
        let bus_traces =
            interleave::run_sweep_streaming(&mut producer, total, opts, |index, result| {
                digest.update(&(index as u64).to_be_bytes());
                if result.denied {
                    denied_revoked += 1;
                    digest.update(b"denied:revoked");
                } else {
                    // Denial beats everything, then the typed failure,
                    // then the key; a keyless "completed" session fails
                    // closed as poisoned — the materialized fold, with
                    // `result.denied` standing in for the denial vector.
                    let failure = if let Some(err) = result.failure {
                        Some(err)
                    } else if let Some(key) = result.key {
                        digest.update(key.as_bytes());
                        handshakes += 1;
                        None
                    } else {
                        Some(ProtocolError::Poisoned)
                    };
                    if let Some(err) = failure {
                        first_failure.get_or_insert(FleetError::Protocol(err));
                        if err == ProtocolError::Timeout {
                            timeouts += 1;
                        }
                        if err == ProtocolError::Poisoned {
                            poisoned += 1;
                        }
                        digest.update(b"failed:");
                        digest.update(err.to_string().as_bytes());
                    }
                }
                makespan = makespan.max(result.end_us);
                messages += result.messages;
                wire_bytes += result.wire_bytes;
                can_frames += result.frames;
            });

        let enrolled = producer.enrolled;
        let enroll_batches = producer.enroll_batches;
        let enroll_makespan = producer.enroll_makespan;
        let sessions = producer.next_index;
        let error = producer.error;

        self.report.enrolled = enrolled;
        self.report.enroll_batches = enroll_batches;
        self.report.enroll_makespan_us = enroll_makespan;
        self.report.sessions = sessions;
        self.report.handshakes = handshakes;
        self.report.denied_revoked = denied_revoked;
        self.report.timeouts = timeouts;
        self.report.poisoned = poisoned;
        self.report.messages = messages;
        self.report.wire_bytes = wire_bytes;
        self.report.can_frames = can_frames;
        self.report.handshake_makespan_us = makespan;
        self.report.key_digest = Some(digest.finalize());
        for trace in &bus_traces {
            self.report.faults.dropped += trace.counters.dropped;
            self.report.faults.corrupted += trace.counters.corrupted;
            self.report.faults.duplicated += trace.counters.duplicated;
            self.report.faults.held_back += trace.counters.held_back;
            self.report.faults.delayed += trace.counters.delayed;
            self.report.faults.replayed += trace.counters.replayed;
            self.report.faults.storm_frames += trace.counters.storm_frames;
            self.report.faults.isotp_errors += trace.counters.isotp_errors;
            self.report.faults.messages_lost += trace.counters.messages_lost;
        }
        self.last_frame_logs = bus_traces.into_iter().map(|t| (t.bus, t.frames)).collect();
        self.last_deliveries = Vec::new();
        if let Some(e) = error {
            return Err(e);
        }
        match first_failure {
            Some(err) => Err(err),
            None => Ok(()),
        }
    }

    /// The per-worker message-delivery log of the last
    /// [`Self::interleaved_sweep`] (diagnostic: shows cross-session
    /// interleaving at message granularity; ordering is per worker, so
    /// it is *not* part of the deterministic report).
    pub fn last_deliveries(&self) -> &[DeliveryRecord] {
        &self.last_deliveries
    }

    /// The per-bus frame-schedule logs of the last
    /// [`Self::interleaved_sweep`] over a shared-bus transport, sorted
    /// by bus id. Unlike the delivery log, the frame schedule *is*
    /// deterministic — it is pinned line-by-line by the golden
    /// shared-bus fixture.
    pub fn last_frame_logs(&self) -> &[(usize, Vec<ecq_simnet::FrameRecord>)] {
        &self.last_frame_logs
    }

    /// Revokes the certificate of roster device `index` on the
    /// coordinator's revocation list. Subsequent handshakes involving
    /// the device are denied with [`ecq_cert::CertError::Revoked`];
    /// established keys stay valid until their epoch ends (revocation
    /// stops *future* sessions — Table III, node capture).
    ///
    /// Returns `false` when the device is not enrolled or was already
    /// revoked.
    pub fn revoke_device(&mut self, index: usize) -> bool {
        match self.devices.get(index).and_then(|d| d.credentials.as_ref()) {
            Some(creds) => self.crl.revoke(creds.cert.serial),
            None => false,
        }
    }

    /// The coordinator's revocation list.
    pub fn revocation_list(&self) -> &RevocationList {
        &self.crl
    }

    /// Mutable access to the revocation list, for revoking by serial
    /// before a [`Self::streaming_sweep`] (whose roster never holds the
    /// credentials [`Self::revoke_device`] would look up).
    pub fn revocation_list_mut(&mut self) -> &mut RevocationList {
        &mut self.crl
    }

    /// Pairs consecutive enrolled devices within each shard and runs
    /// every pair's first STS establishment concurrently.
    ///
    /// Pairing stays intra-shard because the shards are independent
    /// trust roots: a cross-shard handshake would (correctly) fail
    /// authentication.
    ///
    /// Runs once per coordinator; subsequent re-establishments happen
    /// through [`Self::run_epochs`], not by sweeping again.
    ///
    /// # Errors
    ///
    /// [`FleetError::Protocol`] when a handshake fails.
    ///
    /// # Panics
    ///
    /// Panics when called a second time (the pair sessions already
    /// exist and a second sweep would double-count them).
    pub fn handshake_sweep(&mut self) -> Result<(), FleetError> {
        self.create_sessions();
        let mut scheduler = EventScheduler::new();
        for s in 0..self.sessions.len() {
            scheduler.schedule_at(0, SessionEvent::Handshake { session: s });
        }
        let mut makespan: VirtualTime = 0;
        while let Some((at, event)) = scheduler.next_event() {
            let SessionEvent::Handshake { session } = event else {
                continue;
            };
            let now = self.deploy_secs(at);
            let key = self.sessions[session].manager.key_for(now)?;
            self.sessions[session].last_key = Some(key);
            self.report.handshakes += 1;
            let (pa, pb) = (
                self.devices[self.sessions[session].a].preset,
                self.devices[self.sessions[session].b].preset,
            );
            makespan = makespan.max(at + micros_from_ms(self.handshake_cost_ms(pa, pb)));
        }
        self.report.handshake_makespan_us = makespan;
        Ok(())
    }

    /// Runs `epochs` policy-driven rekey rounds: every session gets a
    /// tick each [`RekeyPolicy::max_age_secs`], and the manager
    /// transparently re-establishes when the key has aged out.
    ///
    /// Sessions with a revoked participant are denied instead of
    /// rekeyed: the tick records [`ecq_cert::CertError::Revoked`] on
    /// the session and counts into [`FleetReport::denied_revoked`],
    /// while every other session proceeds — revoking one device never
    /// stalls the fleet.
    ///
    /// # Errors
    ///
    /// [`FleetError::Protocol`] when a rekey handshake fails (e.g. the
    /// certificates expired before the last epoch).
    pub fn run_epochs(&mut self, epochs: u32) -> Result<(), FleetError> {
        let mut scheduler = EventScheduler::new();
        let age_us = self.config.rekey.max_age_secs as VirtualTime * 1_000_000;
        for epoch in 1..=epochs as VirtualTime {
            for s in 0..self.sessions.len() {
                scheduler.schedule_at(epoch * age_us, SessionEvent::RekeyTick { session: s });
            }
        }
        let mut end: VirtualTime = 0;
        while let Some((at, event)) = scheduler.next_event() {
            let SessionEvent::RekeyTick { session } = event else {
                continue;
            };
            if self.session_revoked(session) {
                self.sessions[session].failure = Some(FleetError::Protocol(ProtocolError::Cert(
                    CertError::Revoked,
                )));
                self.report.denied_revoked += 1;
                end = end.max(at);
                continue;
            }
            let now = self.deploy_secs(at);
            let before = self.sessions[session].manager.rekey_count();
            let key = self.sessions[session].manager.key_for(now)?;
            self.sessions[session].last_key = Some(key);
            if self.sessions[session].manager.rekey_count() > before {
                self.report.rekeys += 1;
                self.report.handshakes += 1;
                let (pa, pb) = (
                    self.devices[self.sessions[session].a].preset,
                    self.devices[self.sessions[session].b].preset,
                );
                end = end.max(at + micros_from_ms(self.handshake_cost_ms(pa, pb)));
            } else {
                end = end.max(at);
            }
        }
        self.report.epoch_end_us = end;
        Ok(())
    }

    /// Convenience driver: enrollment, handshake sweep, then `epochs`
    /// rekey rounds. Returns the final report.
    ///
    /// # Errors
    ///
    /// Propagates any phase failure.
    pub fn run_lifecycle(&mut self, epochs: u32) -> Result<FleetReport, FleetError> {
        self.enroll_all()?;
        self.handshake_sweep()?;
        self.run_epochs(epochs)?;
        Ok(self.report.clone())
    }
}

/// Lazy pair-material source for [`FleetCoordinator::streaming_sweep`]:
/// each [`Iterator::next`] call emits the next session's work item,
/// batch-enrolling devices on demand. Shards are processed
/// sequentially; within a shard the per-batch virtual-time chain
/// (`shard_time`) is exactly the chain [`FleetCoordinator::enroll_all`]
/// builds through its event scheduler — enrollment outcomes are
/// order-independent across shards (per-shard chains never interact;
/// makespan is a max, counts are sums), so the sequential replay
/// reproduces the materialized report bit-for-bit.
///
/// Peak resident state: one enrollment batch of credentials plus at
/// most one unpaired leftover — never the roster.
struct PairProducer<'a> {
    config: FleetConfig,
    pool: &'a CaPool,
    devices: &'a [SimDevice],
    device_seeds: &'a [[u8; 32]],
    crl: &'a RevocationList,
    shard_rngs: &'a mut Vec<HmacDrbg>,
    session_rng: &'a mut HmacDrbg,
    /// Shard worklists in roster order (as `enroll_all` builds them).
    worklists: Vec<Vec<usize>>,
    shard: usize,
    cursor: usize,
    /// Virtual time the shard's CA becomes free (per-shard batch chain).
    shard_time: VirtualTime,
    /// Next global session index to emit (pairs count in shard order).
    next_index: usize,
    /// Enrolled-but-unpaired credentials of the current shard, in
    /// roster order.
    queue: VecDeque<(Credentials, DevicePreset)>,
    per_cert_us: VirtualTime,
    enrolled: usize,
    enroll_batches: usize,
    enroll_makespan: VirtualTime,
    /// First enrollment failure; the iterator fuses once set.
    error: Option<FleetError>,
}

impl PairProducer<'_> {
    /// Enrolls the current shard's next batch into the queue — the
    /// streaming replica of one `EnrollEvent::Batch` in
    /// [`FleetCoordinator::enroll_all`], Montgomery-trick issuance and
    /// reconstruction included.
    fn enroll_next_batch(&mut self) -> Result<(), FleetError> {
        let Some(list) = self.worklists.get(self.shard) else {
            return Ok(()); // unreachable: the caller bounds `shard`
        };
        let end = (self.cursor + self.config.enroll_batch.max(1)).min(list.len());
        let chunk = &list[self.cursor..end];
        self.cursor = end;

        let requesters: Vec<CertRequester> = chunk
            .iter()
            .map(|&i| {
                let mut rng = HmacDrbg::new(&self.device_seeds[i], b"fleet-requester");
                CertRequester::generate(self.devices[i].id, &mut rng)
            })
            .collect();
        let requests: Vec<_> = requesters.iter().map(|r| r.request()).collect();
        let ca = self.pool.shard(self.shard);
        let issued = ca.issue_batch(
            &requests,
            self.config.valid_from,
            self.config.valid_to,
            &mut self.shard_rngs[self.shard],
        )?;
        let ca_done = self.shard_time + self.per_cert_us * chunk.len() as VirtualTime;
        let keys = CertRequester::reconstruct_batch(&requesters, &issued, &ca.public_key())?;
        for ((&i, cert), keys) in chunk.iter().zip(&issued).zip(keys) {
            let preset = self.devices[i].preset;
            let device_done =
                ca_done + micros_from_ms(FleetCoordinator::reconstruct_cost_ms(preset));
            self.enroll_makespan = self.enroll_makespan.max(device_done);
            self.enrolled += 1;
            self.queue.push_back((
                Credentials {
                    id: self.devices[i].id,
                    cert: cert.certificate,
                    keys,
                    ca_public: ca.public_key(),
                },
                preset,
            ));
        }
        self.enroll_batches += 1;
        self.shard_time = ca_done;
        Ok(())
    }
}

impl Iterator for PairProducer<'_> {
    type Item = SessionWork;

    fn next(&mut self) -> Option<SessionWork> {
        loop {
            if self.error.is_some() {
                return None;
            }
            if self.queue.len() >= 2 {
                let (creds_a, preset_a) = self.queue.pop_front()?;
                let (creds_b, preset_b) = self.queue.pop_front()?;
                // Seed first, then the CRL verdict — the exact order
                // of `create_sessions` + the sweep's denial pre-check.
                let pair_seed = self.session_rng.bytes32();
                let denied = self.crl.is_revoked(creds_a.cert.serial)
                    || self.crl.is_revoked(creds_b.cert.serial);
                let index = self.next_index;
                self.next_index += 1;
                return Some(SessionWork {
                    index,
                    creds_a,
                    creds_b,
                    preset_a,
                    preset_b,
                    wire_seed: pair_seed,
                    now: self.config.valid_from,
                    variant: self.config.variant,
                    denied,
                });
            }
            let list = self.worklists.get(self.shard)?;
            if self.cursor >= list.len() {
                // Shard exhausted: an odd leftover device stays
                // enrolled-but-unpaired, mirroring the materialized
                // path's `chunks_exact(2)`.
                self.queue.clear();
                self.shard += 1;
                self.cursor = 0;
                self.shard_time = 0;
                if self.shard >= self.worklists.len() {
                    return None;
                }
                continue;
            }
            if let Err(e) = self.enroll_next_batch() {
                self.error = Some(e);
                return None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> FleetConfig {
        FleetConfig::new()
            .devices(24)
            .ca_shards(3)
            .enroll_batch(5)
            .seed(0xABCD)
    }

    #[test]
    fn enrollment_covers_every_device() {
        let mut fleet = FleetCoordinator::new(small_config());
        fleet.enroll_all().unwrap();
        assert_eq!(fleet.report().enrolled, 24);
        assert!(fleet.devices().iter().all(|d| d.is_enrolled()));
        assert!(fleet.report().enroll_makespan_us > 0);
        // 24 devices over 3 shards in batches of ≤5 needs ≥ 5 batches.
        assert!(fleet.report().enroll_batches >= 5);
        for d in fleet.devices() {
            let creds = d.credentials.as_ref().unwrap();
            assert!(creds.keys.is_consistent());
            assert_eq!(creds.cert.subject, d.id);
            // Each device's certificate chains to its own shard's CA.
            assert_eq!(creds.ca_public, fleet.pool.shard(d.shard).public_key());
        }
    }

    #[test]
    fn handshakes_agree_within_shards_with_distinct_keys() {
        let mut fleet = FleetCoordinator::new(small_config());
        fleet.enroll_all().unwrap();
        fleet.handshake_sweep().unwrap();
        assert!(!fleet.sessions().is_empty());
        assert_eq!(fleet.report().handshakes, fleet.sessions().len());
        let mut keys: Vec<[u8; 32]> = fleet
            .sessions()
            .iter()
            .map(|s| *s.last_key().unwrap().as_bytes())
            .collect();
        let n = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), n, "every pair derives an independent key");
        for s in fleet.sessions() {
            assert_eq!(fleet.devices[s.a].shard, fleet.devices[s.b].shard);
            assert_eq!(s.rekey_count(), 1);
        }
    }

    #[test]
    fn epochs_rekey_every_session() {
        let mut fleet = FleetCoordinator::new(small_config());
        let report = fleet.run_lifecycle(3).unwrap();
        let sessions = fleet.sessions().len();
        assert_eq!(report.rekeys, 3 * sessions as u64);
        assert_eq!(report.handshakes, 4 * sessions);
        for s in fleet.sessions() {
            assert_eq!(s.rekey_count(), 4); // initial + 3 aged epochs
        }
        assert!(report.epoch_end_us > report.handshake_makespan_us);
    }

    #[test]
    fn runs_are_reproducible_from_the_seed() {
        let run = |seed| {
            let mut fleet = FleetCoordinator::new(small_config().seed(seed));
            fleet.run_lifecycle(1).unwrap();
            let keys: Vec<[u8; 32]> = fleet
                .sessions()
                .iter()
                .map(|s| *s.last_key().unwrap().as_bytes())
                .collect();
            (fleet.report().enroll_makespan_us, keys)
        };
        let (t1, k1) = run(7);
        let (t2, k2) = run(7);
        assert_eq!(t1, t2);
        assert_eq!(k1, k2);
        let (_, k3) = run(8);
        assert_ne!(k1, k3, "different seed must derive different keys");
    }

    #[test]
    fn sharding_speeds_up_virtual_enrollment() {
        let run = |shards| {
            let mut fleet = FleetCoordinator::new(
                FleetConfig::new()
                    .devices(32)
                    .ca_shards(shards)
                    .enroll_batch(4)
                    .seed(1),
            );
            fleet.enroll_all().unwrap();
            fleet.report().enroll_makespan_us
        };
        // More gateways working concurrently ⇒ shorter virtual makespan.
        assert!(run(4) < run(1));
    }
}
