//! The simulated device roster.

use ecq_cert::DeviceId;
use ecq_devices::DevicePreset;
use ecq_proto::Credentials;

/// One simulated BMS device in the fleet.
#[derive(Clone, Debug)]
pub struct SimDevice {
    /// Position in the fleet roster (stable across a run).
    pub index: usize,
    /// The device identity (`dev-00042` style labels).
    pub id: DeviceId,
    /// The evaluation-board cost model this device simulates.
    pub preset: DevicePreset,
    /// The CA shard that provisions this device.
    pub shard: usize,
    /// Long-term credentials, present once enrollment completed.
    /// Boxed: a million-entry roster should cost one pointer per
    /// un-enrolled device, not an inline credential blob — streaming
    /// sweeps never materialize credentials on the roster at all.
    pub credentials: Option<Box<Credentials>>,
}

impl SimDevice {
    /// Builds the roster entry for fleet position `index`: label
    /// `dev-{index:05}`, preset round-robin over the paper's four
    /// boards. The shard is filled in by the coordinator's router.
    pub fn new(index: usize, shard: usize) -> Self {
        SimDevice {
            index,
            id: Self::id_for(index),
            preset: DevicePreset::ALL[index % DevicePreset::ALL.len()],
            shard,
            credentials: None,
        }
    }

    /// The identity label used for fleet position `index`.
    pub fn id_for(index: usize) -> DeviceId {
        DeviceId::from_label(&format!("dev-{index:05}"))
    }

    /// Whether enrollment completed for this device.
    pub fn is_enrolled(&self) -> bool {
        self.credentials.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_entries_are_stable() {
        let d = SimDevice::new(42, 3);
        assert_eq!(d.id, DeviceId::from_label("dev-00042"));
        assert_eq!(d.preset, DevicePreset::Stm32F767); // 42 % 4 == 2
        assert_eq!(d.shard, 3);
        assert!(!d.is_enrolled());
    }

    #[test]
    fn presets_cycle_over_the_four_boards() {
        let presets: Vec<_> = (0..8).map(|i| SimDevice::new(i, 0).preset).collect();
        assert_eq!(&presets[..4], &DevicePreset::ALL);
        assert_eq!(&presets[4..], &DevicePreset::ALL);
    }
}
