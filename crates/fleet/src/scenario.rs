//! Named adversarial scenarios and their paper-predicted outcomes.
//!
//! Each [`Scenario`] is a small shared-bus fleet run under one
//! deliberately chosen fault schedule — a lost frame in the middle of
//! the four-message handshake, a corrupted authentication response, a
//! replayed first flight, a revocation landing between STS steps, a
//! babbling node hogging arbitration — together with the outcome the
//! protocol analysis (§IV of the paper) predicts for it. The
//! [`Scenario::verify`] contract is the security statement under test:
//!
//! * a completing handshake ends with **bit-equal session keys** on
//!   both endpoints,
//! * a non-completing handshake **fails closed** with the *specific*
//!   expected error — never a silent key mismatch
//!   ([`ProtocolError::KeyMismatch`] surfacing anywhere is a
//!   conformance failure), and never a session keyed against a peer
//!   whose revocation has propagated,
//! * uninvolved sessions sharing the bus still complete (faults are
//!   surgical; the medium itself stays live).
//!
//! The catalog is exercised by the `ecq_analysis` conformance suite and
//! runnable one-by-one via `fleet --scenario <name>`.

use crate::interleave::{RevocationSpec, SweepOptions, TransportKind};
use crate::{FleetConfig, FleetCoordinator, FleetError, FleetReport};
use ecq_cert::CertError;
use ecq_proto::ProtocolError;
use ecq_simnet::{BabbleSpec, FaultAction, FaultSpec, TargetedFault};

/// Virtual-time deadline every scenario runs under: generous against
/// the ~3 s worst-case handshake, tight enough to bound a faulted run.
pub const SCENARIO_DEADLINE_US: u64 = 30_000_000;

/// The paper-predicted outcome of a scenario's *target* session.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Expected {
    /// The handshake completes with matching keys despite the fault.
    Completes,
    /// The handshake completes with matching keys, but the sweep's
    /// makespan must exceed the fault-free baseline (the fault costs
    /// time, not correctness — e.g. an arbitration storm).
    CompletesSlower,
    /// The handshake fails closed with exactly this error and no
    /// session key on record.
    FailsClosed(ProtocolError),
}

/// One named adversarial scenario.
#[derive(Clone, Copy, Debug)]
pub struct Scenario {
    /// Stable CLI/conformance identifier (kebab-case).
    pub name: &'static str,
    /// One-line description of the attack or fault.
    pub summary: &'static str,
    /// Predicted outcome of the target session.
    pub expected: Expected,
    /// Fault schedule applied to the shared bus.
    pub faults: FaultSpec,
    /// Optional mid-handshake revocation.
    pub revocation: Option<RevocationSpec>,
    /// Session index the fault targets (outcome asserted there).
    pub target: usize,
}

/// What actually happened when a scenario ran.
#[derive(Clone, Debug)]
pub struct ScenarioOutcome {
    /// Failure of the target session, if any.
    pub target_failure: Option<ProtocolError>,
    /// Whether the target session holds an established key.
    pub target_keyed: bool,
    /// Per-session failures, session-index order.
    pub session_failures: Vec<Option<ProtocolError>>,
    /// Handshake makespan of the faulted run, µs.
    pub makespan_us: u64,
    /// Handshake makespan of the fault-free baseline, µs.
    pub baseline_makespan_us: u64,
    /// Full report of the faulted run.
    pub report: FleetReport,
}

/// Devices per scenario fleet: two sessions sharing one bus, so every
/// fault plays out against live competing traffic.
const DEVICES: usize = 4;
/// Sessions per shared bus (both sessions ride bus 0).
const GROUP: usize = 2;

impl Scenario {
    /// Runs the scenario (plus a fault-free baseline of the same fleet)
    /// and returns what happened. Handshake failures are expected here,
    /// so the sweep's error return is folded into the outcome rather
    /// than propagated.
    ///
    /// # Panics
    ///
    /// Panics when the *baseline* run fails — the fleet must be sound
    /// before a fault schedule means anything.
    pub fn run(&self) -> ScenarioOutcome {
        let baseline = match run_fleet(self.seed(), FaultSpec::none(), None) {
            Ok(fleet) => fleet,
            Err((_, e)) => panic!("fault-free baseline must complete: {e}"),
        };
        let baseline_makespan_us = baseline.report().handshake_makespan_us;

        let mut faults = self.faults;
        faults.deadline_us = SCENARIO_DEADLINE_US;
        let fleet = match run_fleet(self.seed(), faults, self.revocation) {
            Ok(fleet) | Err((fleet, _)) => fleet,
        };
        let session_failures: Vec<Option<ProtocolError>> = fleet
            .sessions()
            .iter()
            .map(|s| match s.failure() {
                Some(FleetError::Protocol(e)) => Some(*e),
                Some(FleetError::Cert(e)) => Some(ProtocolError::Cert(*e)),
                None => None,
            })
            .collect();
        ScenarioOutcome {
            target_failure: session_failures[self.target],
            target_keyed: fleet.sessions()[self.target].last_key().is_some(),
            session_failures,
            makespan_us: fleet.report().handshake_makespan_us,
            baseline_makespan_us,
            report: fleet.report().clone(),
        }
    }

    /// Runs the scenario and asserts the conformance contract (see the
    /// module docs). Returns the outcome for further inspection.
    ///
    /// # Panics
    ///
    /// Panics — with the scenario name in the message — when any part
    /// of the contract is violated.
    pub fn verify(&self) -> ScenarioOutcome {
        let name = self.name;
        let out = self.run();
        for (i, failure) in out.session_failures.iter().enumerate() {
            assert_ne!(
                *failure,
                Some(ProtocolError::KeyMismatch),
                "{name}: session {i} silently derived mismatched keys"
            );
        }
        match self.expected {
            Expected::Completes => {
                assert_eq!(
                    out.target_failure, None,
                    "{name}: target session must complete"
                );
                assert!(out.target_keyed, "{name}: completed without a session key");
            }
            Expected::CompletesSlower => {
                assert_eq!(
                    out.target_failure, None,
                    "{name}: target session must complete"
                );
                assert!(out.target_keyed, "{name}: completed without a session key");
                assert!(
                    out.makespan_us > out.baseline_makespan_us,
                    "{name}: fault must cost time ({} µs vs baseline {} µs)",
                    out.makespan_us,
                    out.baseline_makespan_us
                );
            }
            Expected::FailsClosed(err) => {
                assert_eq!(
                    out.target_failure,
                    Some(err),
                    "{name}: expected fail-closed outcome {err:?}"
                );
                assert!(
                    !out.target_keyed,
                    "{name}: a failed session must not retain a key"
                );
            }
        }
        // A revoked peer whose CRL has propagated within the run must
        // never end the sweep holding a session key.
        if let Some(rv) = self.revocation {
            if rv.at_us.saturating_add(rv.propagation_us) <= out.makespan_us
                && matches!(self.expected, Expected::FailsClosed(_))
            {
                assert!(
                    !out.target_keyed,
                    "{name}: session keyed against a revoked certificate"
                );
            }
        }
        // Surgical faults must not take down bystander sessions.
        for (i, failure) in out.session_failures.iter().enumerate() {
            if i != self.target {
                assert_eq!(
                    *failure, None,
                    "{name}: bystander session {i} must complete"
                );
            }
        }
        out
    }

    /// Per-scenario fleet seed: derived from the name so scenarios
    /// don't share wire traffic, stable across runs.
    fn seed(&self) -> u64 {
        self.name.bytes().fold(0xCBF2_9CE4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3)
        })
    }
}

/// Runs one 4-device, one-bus fleet under `faults`. On handshake
/// failure the coordinator is returned alongside the error so callers
/// can inspect per-session outcomes.
#[allow(clippy::result_large_err)]
fn run_fleet(
    seed: u64,
    faults: FaultSpec,
    revocation: Option<RevocationSpec>,
) -> Result<FleetCoordinator, (FleetCoordinator, FleetError)> {
    let mut fleet = FleetCoordinator::new(
        FleetConfig::new()
            .devices(DEVICES)
            .ca_shards(1)
            .enroll_batch(DEVICES)
            .seed(seed),
    );
    // The paper's prototype board on every endpoint (§V-C).
    fleet.set_preset_all(ecq_devices::DevicePreset::S32K144);
    if let Err(e) = fleet.enroll_all() {
        return Err((fleet, e));
    }
    let mut opts = SweepOptions::new()
        .threads(1)
        .transport(TransportKind::SharedBus { group: GROUP })
        .faults(faults);
    if let Some(spec) = revocation {
        opts = opts.revocation(spec);
    }
    match fleet.interleaved_sweep(&opts) {
        Ok(()) => Ok(fleet),
        Err(e) => Err((fleet, e)),
    }
}

/// A targeted fault on session 0's bus slot.
const fn hit(
    sender: ecq_proto::Role,
    message: usize,
    frame: usize,
    action: FaultAction,
) -> FaultSpec {
    FaultSpec::targeted_only(
        TargetedFault {
            session: 0,
            sender,
            message,
            frame,
            action,
        },
        SCENARIO_DEADLINE_US,
    )
}

use ecq_proto::Role::{Initiator, Responder};

/// The scenario catalog. Message indices follow the wire protocol:
/// initiator sends A1 (message 0, 2 frames) and A2 (message 1,
/// 3 frames); responder sends B1 (message 0, FF + 3 CFs) and B2
/// (message 1, 1 SF).
pub const CATALOG: &[Scenario] = &[
    Scenario {
        name: "frame-loss-mid-handshake",
        summary: "a CF of B1 is lost on the wire; the certificate never reassembles",
        expected: Expected::FailsClosed(ProtocolError::Timeout),
        faults: hit(Responder, 0, 1, FaultAction::Drop),
        revocation: None,
        target: 0,
    },
    Scenario {
        name: "truncated-isotp-tail",
        summary: "the final CF of B1 is lost; reassembly hangs one frame short",
        expected: Expected::FailsClosed(ProtocolError::Timeout),
        faults: hit(Responder, 0, 3, FaultAction::Drop),
        revocation: None,
        target: 0,
    },
    Scenario {
        name: "ack-loss",
        summary: "B2 (the closing ack) is lost; the initiator never finishes",
        expected: Expected::FailsClosed(ProtocolError::Timeout),
        faults: hit(Responder, 1, 0, FaultAction::Drop),
        revocation: None,
        target: 0,
    },
    Scenario {
        name: "corrupt-b1-auth",
        summary: "one byte of B1's signed response flips in flight; STS authentication rejects it",
        expected: Expected::FailsClosed(ProtocolError::AuthenticationFailed),
        faults: hit(Responder, 0, 3, FaultAction::Corrupt { offset: 10 }),
        revocation: None,
        target: 0,
    },
    Scenario {
        name: "corrupt-b1-pci",
        summary: "B1's first-frame PCI byte flips; ISO-TP discards the whole transfer",
        expected: Expected::FailsClosed(ProtocolError::Timeout),
        faults: hit(Responder, 0, 0, FaultAction::Corrupt { offset: 0 }),
        revocation: None,
        target: 0,
    },
    Scenario {
        name: "reorder-b1-segments",
        summary: "B1's first CF is held back past its successors; sequence check drops the transfer",
        expected: Expected::FailsClosed(ProtocolError::Timeout),
        faults: hit(Responder, 0, 1, FaultAction::HoldBack { ns: 800_000 }),
        revocation: None,
        target: 0,
    },
    Scenario {
        name: "duplicate-b1-segment",
        summary: "a CF of B1 arrives twice; the duplicate violates the ISO-TP sequence",
        expected: Expected::FailsClosed(ProtocolError::Timeout),
        faults: hit(Responder, 0, 1, FaultAction::Duplicate),
        revocation: None,
        target: 0,
    },
    Scenario {
        name: "replayed-first-flight",
        summary: "A1 is captured and replayed after the handshake advances; the stale flight is rejected",
        expected: Expected::FailsClosed(ProtocolError::Decode),
        faults: hit(
            Initiator,
            0,
            0,
            FaultAction::ReplayMessage {
                delay_ns: 5_000_000,
            },
        ),
        revocation: None,
        target: 0,
    },
    Scenario {
        name: "revocation-mid-handshake",
        summary: "the peer is revoked between STS steps with an already-propagated CRL",
        expected: Expected::FailsClosed(ProtocolError::Cert(CertError::Revoked)),
        faults: FaultSpec {
            deadline_us: SCENARIO_DEADLINE_US,
            ..FaultSpec::none()
        },
        revocation: Some(RevocationSpec {
            session: 0,
            at_us: 1,
            propagation_us: 0,
        }),
        target: 0,
    },
    Scenario {
        name: "stale-crl-accept-window",
        summary: "revocation lands mid-handshake but the CRL propagates too slowly: the stale window accepts the peer",
        expected: Expected::Completes,
        faults: FaultSpec {
            deadline_us: SCENARIO_DEADLINE_US,
            ..FaultSpec::none()
        },
        revocation: Some(RevocationSpec {
            session: 0,
            at_us: 1,
            propagation_us: 60_000_000,
        }),
        target: 0,
    },
    Scenario {
        name: "arbitration-storm",
        summary: "a babbling low-ID node floods arbitration; handshakes slow down but stay sound",
        expected: Expected::CompletesSlower,
        faults: FaultSpec {
            // The S32K144 handshake runs ~3.6 s; the storm must cover
            // the window its frames actually hit the wire in. A 500 µs
            // period against ~360 µs babble frames keeps the bus ~70 %
            // occupied by the low-ID babbler.
            babble: Some(BabbleSpec {
                id: 0x010,
                start_us: 0,
                end_us: 4_000_000,
                period_us: 500,
                payload_len: 64,
            }),
            deadline_us: SCENARIO_DEADLINE_US,
            ..FaultSpec::none()
        },
        revocation: None,
        target: 0,
    },
    Scenario {
        name: "clock-skew-responder",
        summary: "the responder's clock runs 5% fast; frames arrive late but the handshake survives",
        expected: Expected::Completes,
        faults: FaultSpec {
            skew_ppm: [0, 50_000],
            deadline_us: SCENARIO_DEADLINE_US,
            ..FaultSpec::none()
        },
        revocation: None,
        target: 0,
    },
];

/// All scenarios, catalog order.
pub fn catalog() -> &'static [Scenario] {
    CATALOG
}

/// Looks a scenario up by its CLI name.
pub fn by_name(name: &str) -> Option<&'static Scenario> {
    CATALOG.iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_are_unique_and_kebab() {
        let mut seen = std::collections::BTreeSet::new();
        for s in CATALOG {
            assert!(seen.insert(s.name), "duplicate scenario {}", s.name);
            assert!(
                s.name
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'),
                "scenario name {} is not kebab-case",
                s.name
            );
        }
        assert!(CATALOG.len() >= 8, "catalog must stay adversarially broad");
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(by_name("ack-loss").map(|s| s.name), Some("ack-loss"));
        assert!(by_name("no-such-scenario").is_none());
    }

    #[test]
    fn seeds_differ_across_scenarios() {
        let a = by_name("ack-loss").unwrap().seed();
        let b = by_name("corrupt-b1-auth").unwrap().seed();
        assert_ne!(a, b);
    }
}
