//! Aggregated results of a fleet run.

use crate::scheduler::VirtualTime;
use ecq_devices::DevicePreset;
use std::collections::BTreeMap;

/// Counters and simulated-time totals for one fleet lifecycle.
///
/// All times are *virtual*: they come from the `ecq_devices` cost
/// models integrated by the event scheduler, not from the host clock,
/// so two runs with the same seed produce the same report. Wall-clock
/// throughput of the host is measured separately by the `fleet` bench
/// binary.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FleetReport {
    /// Devices in the roster.
    pub devices: usize,
    /// CA shards provisioning the roster.
    pub shards: usize,
    /// Devices that completed ECQV enrollment.
    pub enrolled: usize,
    /// `issue_batch` calls that served those enrollments.
    pub enroll_batches: usize,
    /// Virtual makespan of the enrollment phase in microseconds
    /// (shards work concurrently; this is the slowest shard's total).
    pub enroll_makespan_us: VirtualTime,
    /// Pair sessions created by the handshake sweep.
    pub sessions: usize,
    /// Completed STS handshakes (initial establishments + rekeys).
    pub handshakes: usize,
    /// Rekeys beyond each session's initial establishment.
    pub rekeys: u64,
    /// Virtual makespan of the initial handshake sweep in microseconds
    /// (pairs run concurrently).
    pub handshake_makespan_us: VirtualTime,
    /// Virtual time at the end of the rekey-epoch phase, microseconds.
    pub epoch_end_us: VirtualTime,
    /// Wire messages delivered as individual scheduler events by the
    /// interleaved sweep.
    pub messages: u64,
    /// Handshake payload bytes those messages carried.
    pub wire_bytes: u64,
    /// Link-layer CAN-FD frames moved (0 for the channel transport).
    pub can_frames: u64,
    /// Handshakes denied because a participant's certificate was on the
    /// coordinator's revocation list.
    pub denied_revoked: u64,
    /// Sessions that failed closed with `ProtocolError::Timeout` at the
    /// sweep deadline (fault-injected sweeps only; 0 on a clean wire).
    pub timeouts: u64,
    /// Sessions that failed closed with `ProtocolError::Poisoned`
    /// because the simulation lost their state mid-sweep (broken
    /// scheduler invariant or crashed worker; 0 on a healthy run).
    pub poisoned: u64,
    /// Fault-engine activity summed over every shared bus in the sweep
    /// (all-zero for private links or an inactive fault spec).
    pub faults: ecq_simnet::FaultCounters,
    /// SHA-256 over every session's outcome (key bytes or failure
    /// marker) in session-index order — the cheap cross-run and
    /// cross-thread-count determinism witness.
    pub key_digest: Option<[u8; 32]>,
    /// Enrolled devices per evaluation board.
    pub per_preset: BTreeMap<DevicePreset, usize>,
}

impl FleetReport {
    /// Enrollments per simulated second of CA-gateway time.
    pub fn enrollments_per_virtual_sec(&self) -> f64 {
        per_sec(self.enrolled, self.enroll_makespan_us)
    }

    /// Initial handshakes per simulated second.
    pub fn handshakes_per_virtual_sec(&self) -> f64 {
        per_sec(self.sessions, self.handshake_makespan_us)
    }
}

fn per_sec(count: usize, span_us: VirtualTime) -> f64 {
    if span_us == 0 {
        return 0.0;
    }
    count as f64 / (span_us as f64 / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_handles_empty_runs() {
        let r = FleetReport::default();
        assert_eq!(r.enrollments_per_virtual_sec(), 0.0);
        let r = FleetReport {
            enrolled: 500,
            enroll_makespan_us: 2_000_000,
            ..FleetReport::default()
        };
        assert!((r.enrollments_per_virtual_sec() - 250.0).abs() < 1e-9);
    }
}
