//! Fleet-scale provisioning and session management.
//!
//! The paper's pitch (§I) is that ECQV + STS dynamic key derivation
//! makes per-session rekeying cheap enough for *fleets* of constrained
//! devices — yet a single CA talking to a single device never exercises
//! that claim. This crate turns the reproduction into a throughput
//! system:
//!
//! * [`CaPool`] — a sharded pool of certificate authorities; devices
//!   route to a shard by a stable hash of their identity, and shards
//!   enroll their populations concurrently,
//! * [`FleetCoordinator`] — drives N simulated devices through the full
//!   lifecycle: batch ECQV enrollment
//!   ([`ecq_cert::ca::CertificateAuthority::issue_batch`], one shared
//!   field inversion per batch), concurrent STS `establish()`
//!   handshakes, and policy-driven rekey epochs via
//!   [`ecq_sts::SessionManager`],
//! * [`EventScheduler`] — a deterministic discrete-event scheduler:
//!   durations come from the `ecq_devices` cost models, ties break by
//!   insertion order, and no wall-clock time is ever read, so a
//!   `(config, seed)` pair reproduces a run bit-for-bit,
//! * [`FleetReport`] — enrollment/handshake/rekey counters plus
//!   virtual-time makespans for throughput accounting.
//!
//! Real cryptography runs on the host (every certificate is issued and
//! every handshake fully executed); only *time* is simulated, exactly
//! as in the rest of the workspace.
//!
//! # Example
//!
//! ```
//! use ecq_fleet::{FleetConfig, FleetCoordinator};
//!
//! let mut fleet =
//!     FleetCoordinator::new(FleetConfig::new().devices(32).ca_shards(4).enroll_batch(8));
//! let report = fleet.run_lifecycle(1).unwrap();
//! assert_eq!(report.enrolled, 32);
//! assert!(report.enrollments_per_virtual_sec() > 0.0);
//! ```

#![deny(missing_docs)]

pub mod coordinator;
pub mod device;
pub mod interleave;
pub mod pool;
pub mod report;
pub mod scenario;
pub mod scheduler;

pub use coordinator::{FleetConfig, FleetCoordinator, PairSession};
pub use device::SimDevice;
pub use interleave::{DeliveryRecord, RevocationSpec, SweepOptions, TransportKind};
pub use pool::CaPool;
pub use report::FleetReport;
pub use scenario::{Expected, Scenario, ScenarioOutcome};
pub use scheduler::{EventScheduler, VirtualTime};

/// Errors surfaced by a fleet run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetError {
    /// Certificate issuance or reconstruction failed during enrollment.
    Cert(ecq_cert::CertError),
    /// An STS handshake or rekey failed.
    Protocol(ecq_proto::ProtocolError),
}

impl core::fmt::Display for FleetError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FleetError::Cert(e) => write!(f, "enrollment failed: {e}"),
            FleetError::Protocol(e) => write!(f, "session failed: {e}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<ecq_cert::CertError> for FleetError {
    fn from(e: ecq_cert::CertError) -> Self {
        FleetError::Cert(e)
    }
}

impl From<ecq_proto::ProtocolError> for FleetError {
    fn from(e: ecq_proto::ProtocolError) -> Self {
        FleetError::Protocol(e)
    }
}
