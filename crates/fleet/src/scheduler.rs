//! A deterministic discrete-event scheduler.
//!
//! Fleet runs must be reproducible bit-for-bit from a seed, so nothing
//! in this crate reads wall-clock time. Instead every lifecycle step is
//! an event on a virtual microsecond timeline; durations come from the
//! `ecq_devices` cost models, and ties are broken by insertion order so
//! the processing sequence is a pure function of the schedule.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Virtual time in microseconds since the start of the run.
pub type VirtualTime = u64;

/// Converts a cost-model duration in milliseconds to virtual time.
pub fn micros_from_ms(ms: f64) -> VirtualTime {
    (ms * 1_000.0).round() as VirtualTime
}

struct Scheduled<E> {
    at: VirtualTime,
    seq: u64,
    event: E,
}

// Ordering ignores the payload: events sort by time, then by insertion
// order (seq is unique, so the order is total and deterministic).
impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A min-heap event queue over virtual time.
pub struct EventScheduler<E> {
    queue: BinaryHeap<Reverse<Scheduled<E>>>,
    now: VirtualTime,
    seq: u64,
}

impl<E> Default for EventScheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventScheduler<E> {
    /// An empty scheduler at virtual time zero.
    pub fn new() -> Self {
        EventScheduler {
            queue: BinaryHeap::new(),
            now: 0,
            seq: 0,
        }
    }

    /// The current virtual time (the timestamp of the last popped
    /// event).
    pub fn now(&self) -> VirtualTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Schedules `event` at absolute virtual time `at` (clamped to the
    /// present: scheduling into the past fires at `now`).
    pub fn schedule_at(&mut self, at: VirtualTime, event: E) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Scheduled { at, seq, event }));
    }

    /// Schedules `event` `delay` microseconds from now.
    pub fn schedule_after(&mut self, delay: VirtualTime, event: E) {
        self.schedule_at(self.now.saturating_add(delay), event);
    }

    /// Pops the earliest event, advancing virtual time to it.
    pub fn next_event(&mut self) -> Option<(VirtualTime, E)> {
        let Reverse(s) = self.queue.pop()?;
        self.now = s.at;
        Some((s.at, s.event))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut s = EventScheduler::new();
        s.schedule_at(30, "c");
        s.schedule_at(10, "a");
        s.schedule_at(20, "b");
        assert_eq!(s.next_event(), Some((10, "a")));
        assert_eq!(s.next_event(), Some((20, "b")));
        assert_eq!(s.now(), 20);
        assert_eq!(s.next_event(), Some((30, "c")));
        assert_eq!(s.next_event(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut s = EventScheduler::new();
        for i in 0..100 {
            s.schedule_at(5, i);
        }
        for i in 0..100 {
            assert_eq!(s.next_event(), Some((5, i)));
        }
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut s = EventScheduler::new();
        s.schedule_at(50, "late");
        assert_eq!(s.next_event(), Some((50, "late")));
        s.schedule_at(10, "early");
        assert_eq!(s.next_event(), Some((50, "early")));
        assert_eq!(s.now(), 50);
    }

    #[test]
    fn relative_scheduling_and_conversion() {
        let mut s = EventScheduler::new();
        s.schedule_at(100, ());
        s.next_event();
        s.schedule_after(micros_from_ms(1.5), ());
        assert_eq!(s.next_event(), Some((1_600, ())));
    }
}
