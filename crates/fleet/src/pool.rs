//! A sharded pool of certificate authorities.
//!
//! One CA gateway serializes every enrollment in the fleet; the paper's
//! architecture (Fig. 1) has no objection to several gateways, each
//! owning a disjoint population of devices. [`CaPool`] models exactly
//! that: `shard_count` independent CAs, with devices routed to a shard
//! by a stable hash of their identity, so enrollment throughput scales
//! with the number of gateways while every assignment stays a pure
//! function of the device id.
//!
//! Devices provisioned by different shards hold certificates from
//! different roots and (correctly) fail STS authentication against each
//! other, so the fleet coordinator pairs sessions *within* a shard —
//! each shard is one trust domain, like one vehicle or one charging
//! site. Cross-shard trust needs CA cross-signing (a ROADMAP item).

use ecq_cert::ca::CertificateAuthority;
use ecq_cert::DeviceId;
use ecq_crypto::HmacDrbg;

/// A fixed set of independent certificate authorities.
pub struct CaPool {
    shards: Vec<CertificateAuthority>,
}

impl CaPool {
    /// Creates `shard_count` CAs (at least one), keyed from `rng` in
    /// shard order, named `ca-00`, `ca-01`, ….
    pub fn new(shard_count: usize, rng: &mut HmacDrbg) -> Self {
        let shards = (0..shard_count.max(1))
            .map(|i| CertificateAuthority::new(DeviceId::from_label(&format!("ca-{i:02}")), rng))
            .collect();
        CaPool { shards }
    }

    /// Number of shards in the pool.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The CA serving shard `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index >= shard_count()`.
    pub fn shard(&self, index: usize) -> &CertificateAuthority {
        &self.shards[index]
    }

    /// The shard serving `id`: FNV-1a over the identity bytes, reduced
    /// mod the shard count. Stable across runs and processes.
    pub fn shard_for(&self, id: &DeviceId) -> usize {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in id.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h % self.shards.len() as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_have_distinct_roots() {
        let mut rng = HmacDrbg::from_seed(90);
        let pool = CaPool::new(4, &mut rng);
        assert_eq!(pool.shard_count(), 4);
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_ne!(pool.shard(i).public_key(), pool.shard(j).public_key());
            }
        }
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        let mut rng = HmacDrbg::from_seed(91);
        let pool = CaPool::new(5, &mut rng);
        for i in 0..200 {
            let id = DeviceId::from_label(&format!("dev-{i:05}"));
            let s = pool.shard_for(&id);
            assert!(s < 5);
            assert_eq!(s, pool.shard_for(&id));
        }
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let mut rng = HmacDrbg::from_seed(92);
        let pool = CaPool::new(0, &mut rng);
        assert_eq!(pool.shard_count(), 1);
        assert_eq!(pool.shard_for(&DeviceId::from_label("x")), 0);
    }

    #[test]
    fn routing_spreads_load() {
        let mut rng = HmacDrbg::from_seed(93);
        let pool = CaPool::new(4, &mut rng);
        let mut counts = [0usize; 4];
        for i in 0..1000 {
            counts[pool.shard_for(&DeviceId::from_label(&format!("dev-{i:05}")))] += 1;
        }
        // FNV over distinct labels should not starve any shard.
        assert!(counts.iter().all(|&c| c > 100), "{counts:?}");
    }
}
