//! Message-granularity handshake sweeps: every wire message is its own
//! scheduler event, device populations shard across host threads, and
//! groups of sessions can share one arbitrated CAN-FD bus under a
//! deterministic fault plan.
//!
//! The atomic sweep ([`crate::FleetCoordinator::handshake_sweep`])
//! completes a whole handshake inside one scheduler event — nothing can
//! interleave. This module decomposes each STS establishment into its
//! four wire messages (`A1 B1 A2 B2`): an endpoint's
//! [`ecq_proto::Endpoint::step`] runs when its message *arrives*, its
//! compute time is integrated from the primitive-operation trace it
//! recorded during that step (against the board's `ecq_devices` cost
//! table), and the reply goes back to the link, which decides the next
//! delivery time. A thousand devices' handshakes genuinely interleave
//! on the virtual timeline, at message granularity.
//!
//! # Parallelism / determinism contract
//!
//! With private links ([`TransportKind::Channel`] /
//! [`TransportKind::Simnet`]) sessions share no simulation state, so a
//! session's entire result is a pure function of
//! `(config, seed, session index)` and any shard layout reproduces the
//! same report.
//!
//! [`TransportKind::SharedBus`] couples `group` consecutive sessions on
//! one arbitrated bus, so a bus — not a session — becomes the unit of
//! independence. Three rules keep the `(config, seed)` report
//! bit-identical for any worker count even then:
//!
//! 1. **Shard by bus, never by pair.** `run_sweep` assigns whole bus
//!    groups to workers; a worker *hard-errors* if it receives a
//!    bus with members missing (a split bus would change arbitration).
//! 2. **Lane-ordered events.** Each worker's scheduler orders same-time
//!    events by a global lane key (session index; buses order after all
//!    sessions), not by insertion order, so the pop order is a function
//!    of the virtual timeline alone — not of which sessions happen to
//!    be co-resident in the worker.
//! 3. **Pure fault decisions.** Every random fault choice is a
//!    splitmix64 hash of `(fault seed, bus id, sequence number)` (see
//!    [`ecq_simnet::fault`]), never a draw from mutable RNG state.
//!
//! Session state (credentials, RNG seeds) is prepared serially and
//! *moved* into the workers, so the timed sweep region clones no
//! certificates or keys.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::rc::Rc;

use crate::scheduler::{micros_from_ms, VirtualTime};
use ecq_cert::CertError;
use ecq_crypto::{ct, HmacDrbg};
use ecq_devices::{DevicePreset, DeviceProfile};
use ecq_proto::transport::{ChannelTransport, Transport};
use ecq_proto::SocketPair;
use ecq_proto::{Credentials, Endpoint, OpTrace, ProtocolError, Role, SessionKey, StepOutput};
use ecq_simnet::{ms_to_ns, CanLink, FaultCounters, FaultPlan, FaultSpec, FrameRecord, SharedBus};
use ecq_sts::{StsConfig, StsInitiator, StsResponder, StsVariant};

/// Which link implementation carries the handshake messages.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransportKind {
    /// In-memory channel with a fixed per-message latency (µs).
    Channel {
        /// Per-message delivery latency in virtual microseconds.
        latency_us: u64,
    },
    /// The simulated CAN-FD/ISO-TP stack (`ecq_simnet::CanLink`), one
    /// private bus per pair, with per-frame driver overhead from the
    /// pair's board cost tables.
    Simnet,
    /// One arbitrated CAN-FD bus per `group` consecutive sessions
    /// (`ecq_simnet::SharedBus`): their frames compete for the wire and
    /// the sweep's [`FaultSpec`] applies. `group = 1` degenerates to a
    /// private (but fault-injectable) bus per pair.
    SharedBus {
        /// Sessions per bus; session `i` rides bus `i / group`.
        group: usize,
    },
    /// A real in-process socket pair per session
    /// (`ecq_proto::SocketPair`): every wire message crosses a kernel
    /// socket buffer in the versioned service frame format. Delivery
    /// is immediate in virtual time, so reports stay deterministic;
    /// this is the smoke path proving the service wire format carries
    /// the sweep's exact byte streams.
    Socket,
}

/// Revocation arriving *during* the sweep: from `at_us`, session
/// `session`'s peer is considered revoked, but endpoints only learn of
/// it once the CRL propagates — `propagation_us` is the stale-CRL
/// acceptance window during which the revoked peer is still honored
/// (the paper's §IV-C lifecycle caveat, made measurable).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RevocationSpec {
    /// Global session index whose handshake the revocation targets.
    pub session: usize,
    /// Virtual time (µs) the certificate is revoked at the CA.
    pub at_us: u64,
    /// CRL propagation delay (µs): deliveries to the targeted session
    /// strictly before `at_us + propagation_us` still succeed.
    pub propagation_us: u64,
}

/// Options for an interleaved sweep.
///
/// The struct is `#[non_exhaustive]`: build one with
/// [`SweepOptions::new`] (or `default()`) and refine it with the
/// builder methods, e.g.
/// `SweepOptions::new().threads(8).transport(TransportKind::Socket)`.
#[derive(Clone, Copy, Debug)]
#[non_exhaustive]
pub struct SweepOptions {
    /// Host worker threads to shard the session population across
    /// (clamped to at least 1). The report is identical for any value.
    pub threads: usize,
    /// Link implementation for every pair.
    pub transport: TransportKind,
    /// Fault schedule applied to shared buses (ignored by private
    /// links; [`FaultSpec::none`] injects nothing). The spec's
    /// `deadline_us` bounds the sweep: sessions unfinished at the
    /// deadline fail closed with [`ProtocolError::Timeout`].
    pub faults: FaultSpec,
    /// Optional mid-sweep revocation with a stale-CRL window.
    pub revocation: Option<RevocationSpec>,
    /// Chaos hook: the worker drops the state of the session with this
    /// global index before its kickoff. The session must fail closed
    /// with [`ProtocolError::Poisoned`] (counted in
    /// [`crate::FleetReport::poisoned`]) while the rest of the fleet
    /// completes — the regression harness for the sweep's
    /// no-panic contract.
    pub poison: Option<usize>,
    /// Admission window of the streaming scheduler: at most this many
    /// sessions are resident (queued in worker channels, simulating, or
    /// awaiting in-order aggregation) at any moment, so peak memory
    /// scales with the window instead of the fleet. `usize::MAX` (the
    /// default) keeps the materialized path. The report is bit-identical
    /// for any window value — sessions (and whole bus groups) are pure
    /// functions of their own work items, so admission timing cannot
    /// change their outcome.
    pub max_inflight: usize,
}

impl Default for SweepOptions {
    /// One worker over the simnet transport, no faults.
    fn default() -> Self {
        SweepOptions {
            threads: 1,
            transport: TransportKind::Simnet,
            faults: FaultSpec::none(),
            revocation: None,
            poison: None,
            max_inflight: usize::MAX,
        }
    }
}

impl SweepOptions {
    /// The default options, as a builder starting point.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the host worker thread count.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the link implementation.
    #[must_use]
    pub fn transport(mut self, transport: TransportKind) -> Self {
        self.transport = transport;
        self
    }

    /// Sets the fault schedule.
    #[must_use]
    pub fn faults(mut self, faults: FaultSpec) -> Self {
        self.faults = faults;
        self
    }

    /// Schedules a mid-sweep revocation.
    #[must_use]
    pub fn revocation(mut self, revocation: RevocationSpec) -> Self {
        self.revocation = Some(revocation);
        self
    }

    /// Poisons the session with this global index (chaos hook).
    #[must_use]
    pub fn poison(mut self, poison: usize) -> Self {
        self.poison = Some(poison);
        self
    }

    /// Bounds the number of sessions resident in the streaming
    /// scheduler at once (clamped up to one bus group).
    #[must_use]
    pub fn max_inflight(mut self, max_inflight: usize) -> Self {
        self.max_inflight = max_inflight;
        self
    }
}

/// One delivered wire message, in the order a worker's scheduler popped
/// it (diagnostic evidence of interleaving; not part of the report —
/// pop order is per-worker and therefore depends on the shard layout).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeliveryRecord {
    /// Global session index the message belongs to.
    pub session: usize,
    /// The paper's step label ("A1", "B1", "A2", "B2").
    pub step: &'static str,
    /// Virtual time the message was delivered to its endpoint.
    pub at_us: VirtualTime,
}

/// Everything a worker needs to run one session, prepared serially by
/// the coordinator so RNG streams derive in session-index order.
pub(crate) struct SessionWork {
    pub index: usize,
    pub creds_a: Credentials,
    pub creds_b: Credentials,
    pub preset_a: DevicePreset,
    pub preset_b: DevicePreset,
    /// Per-pair seed for the wire endpoints' DRBG streams.
    pub wire_seed: [u8; 32],
    pub now: u32,
    pub variant: StsVariant,
    /// Pre-checked against the coordinator's revocation list: a denied
    /// session never starts its handshake.
    pub denied: bool,
}

/// Per-session outcome, aggregated in index order.
pub(crate) struct SessionResult {
    pub key: Option<SessionKey>,
    pub failure: Option<ProtocolError>,
    pub end_us: VirtualTime,
    pub messages: u64,
    pub wire_bytes: u64,
    pub frames: u64,
    /// The session was denied by the CRL check before kickoff. Carried
    /// in the result so streaming aggregation (which holds no
    /// per-session state of its own) can classify the outcome.
    pub denied: bool,
}

impl SessionResult {
    pub(crate) fn empty() -> Self {
        SessionResult {
            key: None,
            failure: None,
            end_us: 0,
            messages: 0,
            wire_bytes: 0,
            frames: 0,
            denied: false,
        }
    }
}

/// Fault-engine evidence from one shared bus: aggregate counters for
/// the report and the full frame-schedule log for fixtures/forensics.
pub(crate) struct BusTrace {
    pub bus: usize,
    pub counters: FaultCounters,
    pub frames: Vec<FrameRecord>,
}

/// The per-worker configuration, identical across workers so a session
/// computes the same result wherever it lands.
#[derive(Clone, Copy)]
pub(crate) struct WorkerConfig {
    pub transport: TransportKind,
    pub faults: FaultSpec,
    pub revocation: Option<RevocationSpec>,
    /// Total sessions in the sweep (bounds the width of the last bus).
    pub total: usize,
    /// Test hook: drop the state of the session with this global index
    /// before its kickoff, exercising the fail-closed poisoned path.
    pub poison: Option<usize>,
}

/// The wire under one session: private (owned transport) or a slot on
/// a shared bus co-owned by the worker's bus group.
enum Link {
    Private(Box<dyn Transport>),
    Shared {
        bus: Rc<RefCell<SharedBus>>,
        bus_id: usize,
        slot: usize,
    },
}

/// A live session inside one worker's event loop.
struct Live {
    /// Global session index (for the delivery log and event lanes;
    /// results aggregate by slot order).
    index: usize,
    initiator: StsInitiator,
    responder: StsResponder,
    link: Link,
    profiles: [DeviceProfile; 2],
    cursors: [usize; 2],
    result: SessionResult,
    /// Last virtual time anything happened to this session (timeout
    /// stamping when no deadline is set).
    last_event_us: VirtualTime,
    done: bool,
}

enum Event {
    /// The initiator opens its handshake (draws no message).
    Kickoff { slot: usize },
    /// A wire message arrives at one endpoint.
    Deliver { slot: usize, to: Role },
    /// A shared bus may have frames to arbitrate/complete.
    BusAdvance { bus: usize },
}

/// Event lanes order same-time events globally: session events ride
/// their *global* session index, bus events ride `LANE_BUS + bus id`
/// so every same-time endpoint step (and its sends) lands before the
/// bus arbitrates — the pop order is shard-layout-independent.
const LANE_BUS: u64 = 1 << 32;

struct LaneEntry {
    at: VirtualTime,
    lane: u64,
    seq: u64,
    event: Event,
}

impl PartialEq for LaneEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.lane, self.seq) == (other.at, other.lane, other.seq)
    }
}
impl Eq for LaneEntry {}
impl PartialOrd for LaneEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for LaneEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.lane, self.seq).cmp(&(other.at, other.lane, other.seq))
    }
}

/// A deterministic min-heap over `(at, lane, seq)`: time first, then
/// the global lane, then insertion order as the final tiebreak.
struct LaneScheduler {
    queue: BinaryHeap<Reverse<LaneEntry>>,
    now: VirtualTime,
    seq: u64,
}

impl LaneScheduler {
    fn new() -> Self {
        LaneScheduler {
            queue: BinaryHeap::new(),
            now: 0,
            seq: 0,
        }
    }

    /// Schedules `event` at `at` (clamped to now) on `lane`.
    fn schedule(&mut self, at: VirtualTime, lane: u64, event: Event) {
        let at = at.max(self.now);
        self.queue.push(Reverse(LaneEntry {
            at,
            lane,
            seq: self.seq,
            event,
        }));
        self.seq += 1;
    }

    fn next(&mut self) -> Option<(VirtualTime, Event)> {
        let Reverse(entry) = self.queue.pop()?;
        self.now = entry.at;
        Some((entry.at, entry.event))
    }
}

/// Integrates the primitives an endpoint recorded since the last step.
fn delta_cost_ms(trace: &OpTrace, cursor: &mut usize, profile: &DeviceProfile) -> f64 {
    let entries = trace.entries();
    let cost = entries[*cursor..]
        .iter()
        .map(|e| profile.cost_of(&e.op))
        .sum();
    *cursor = entries.len();
    cost
}

impl Live {
    fn endpoint_mut(&mut self, role: Role) -> &mut dyn Endpoint {
        match role {
            Role::Initiator => &mut self.initiator,
            Role::Responder => &mut self.responder,
        }
    }

    /// Runs one endpoint step and returns `(output, completion time)`;
    /// the completion time charges the step's traced primitives against
    /// the endpoint's board.
    fn step(
        &mut self,
        role: Role,
        incoming: Option<&ecq_proto::Message>,
        now: VirtualTime,
    ) -> Result<(StepOutput, VirtualTime), ProtocolError> {
        let out = self.endpoint_mut(role).step(incoming)?;
        let idx = match role {
            Role::Initiator => 0,
            Role::Responder => 1,
        };
        let trace = match role {
            Role::Initiator => self.initiator.trace(),
            Role::Responder => self.responder.trace(),
        };
        let cost = delta_cost_ms(trace, &mut self.cursors[idx], &self.profiles[idx]);
        Ok((out, now + micros_from_ms(cost)))
    }

    fn recv_message(
        &mut self,
        to: Role,
        now: VirtualTime,
    ) -> Result<Option<ecq_proto::Message>, ProtocolError> {
        match &mut self.link {
            Link::Private(t) => Ok(t.recv_frame(to, now, now)?),
            Link::Shared { bus, slot, .. } => Ok(bus.borrow_mut().recv(*slot, to, now)),
        }
    }

    fn capture_stats(&mut self) {
        match &self.link {
            Link::Private(t) => {
                self.result.messages = t.messages_carried();
                self.result.wire_bytes = t.bytes_carried();
                self.result.frames = t.frames_carried();
            }
            Link::Shared { bus, slot, .. } => {
                let s = bus.borrow().slot_stats(*slot);
                self.result.messages = s.messages;
                self.result.wire_bytes = s.bytes;
                self.result.frames = s.frames;
            }
        }
    }

    /// Closes an established session. Both sides claiming establishment
    /// is *not* trusted: the keys are compared (in constant time) and a
    /// disagreement surfaces as [`ProtocolError::KeyMismatch`] — a
    /// faulted wire must never yield a silently mismatched session.
    fn finalize(&mut self, end: VirtualTime) {
        let key_a = self.initiator.session_key().ok();
        let key_b = self.responder.session_key().ok();
        match (key_a, key_b) {
            (Some(a), Some(b)) if ct::eq(a.as_bytes(), b.as_bytes()) => {
                self.result.key = Some(a);
            }
            _ => self.result.failure = Some(ProtocolError::KeyMismatch),
        }
        self.result.end_us = end;
        self.capture_stats();
        self.done = true;
    }

    fn fail(&mut self, err: ProtocolError, at: VirtualTime) {
        self.result.failure = Some(err);
        self.result.end_us = at;
        self.capture_stats();
        self.done = true;
    }
}

/// Sends `msg` over the session's link and schedules the follow-up
/// event: the peer's delivery (private links decide arrival themselves)
/// or a bus-advance (shared links arbitrate first).
fn dispatch_send(
    session: &mut Live,
    slot: usize,
    from: Role,
    msg: ecq_proto::Message,
    done_at: VirtualTime,
    scheduler: &mut LaneScheduler,
) {
    match &mut session.link {
        Link::Private(t) => match t.send_frame(from, msg, done_at) {
            Ok(arrival) => {
                scheduler.schedule(
                    arrival,
                    session.index as u64,
                    Event::Deliver {
                        slot,
                        to: from.peer(),
                    },
                );
            }
            // A link that refuses a frame fails the session closed —
            // virtual links never do; a socket link surfaces real I/O.
            Err(e) => session.fail(e.into(), done_at),
        },
        Link::Shared {
            bus,
            bus_id,
            slot: bus_slot,
        } => {
            bus.borrow_mut().send(*bus_slot, from, msg, done_at);
            scheduler.schedule(
                done_at,
                LANE_BUS + *bus_id as u64,
                Event::BusAdvance { bus: *bus_id },
            );
        }
    }
}

/// Runs one worker's share of sessions under a single virtual clock,
/// delivering messages as events. Takes its sessions by value so the
/// prepared credentials move straight into the endpoints — the sweep
/// performs no per-session certificate/key cloning inside the timed
/// region. Returns the per-session results in the order `work` was
/// given, plus this worker's delivery log in scheduler pop order and
/// the traces of the buses it owned.
///
/// # Panics
///
/// Under [`TransportKind::SharedBus`], panics if `work` contains a bus
/// group with members missing: a bus split across sweep shards would
/// arbitrate different traffic per layout and break the determinism
/// contract, so it is rejected loudly rather than simulated wrong.
pub(crate) fn run_worker(
    work: Vec<SessionWork>,
    cfg: WorkerConfig,
) -> (Vec<SessionResult>, Vec<DeliveryRecord>, Vec<BusTrace>) {
    if let TransportKind::SharedBus { group } = cfg.transport {
        assert_complete_buses(&work, group.max(1), cfg.total);
    }

    let mut live: Vec<Option<Live>> = Vec::with_capacity(work.len());
    // Slots whose state was lost while events were still due for them.
    // A poisoned slot fails closed as `ProtocolError::Poisoned` instead
    // of aborting the whole worker.
    let mut poisoned: Vec<bool> = vec![false; work.len()];
    // Slots denied by the CRL pre-check (echoed into the results).
    let mut denied_slots: Vec<bool> = vec![false; work.len()];
    let mut log: Vec<DeliveryRecord> = Vec::new();
    let mut scheduler = LaneScheduler::new();
    // Buses this worker owns, and (bus, bus slot) → local `live` slot.
    let mut buses: BTreeMap<usize, Rc<RefCell<SharedBus>>> = BTreeMap::new();
    let mut slot_of: BTreeMap<(usize, usize), usize> = BTreeMap::new();

    for (slot, w) in work.into_iter().enumerate() {
        // Register the bus slot for *every* session — including denied
        // ones — so slot numbering (and thus arbitration priority)
        // matches the global layout `bus slot = index % group`.
        let shared = if let TransportKind::SharedBus { group } = cfg.transport {
            let group = group.max(1);
            let bus_id = w.index / group;
            let bus = buses
                .entry(bus_id)
                .or_insert_with(|| {
                    Rc::new(RefCell::new(SharedBus::new(FaultPlan::new(
                        cfg.faults,
                        bus_id as u64,
                    ))))
                })
                .clone();
            let bus_slot = bus.borrow_mut().add_slot(
                (w.index & 0xFFFF) as u16,
                [
                    ms_to_ns(w.preset_a.profile().costs.hash_block_ms),
                    ms_to_ns(w.preset_b.profile().costs.hash_block_ms),
                ],
            );
            debug_assert_eq!(bus_slot, w.index % group, "bus slots follow session order");
            slot_of.insert((bus_id, bus_slot), slot);
            Some((bus, bus_id, bus_slot))
        } else {
            None
        };
        if w.denied {
            if let Some(d) = denied_slots.get_mut(slot) {
                *d = true;
            }
            live.push(None);
            continue;
        }
        if cfg.poison == Some(w.index) {
            // Test hook: the session's state is gone but its kickoff
            // still fires, driving the fail-closed branch below.
            live.push(None);
            scheduler.schedule(0, w.index as u64, Event::Kickoff { slot });
            continue;
        }
        let link = match shared {
            Some((bus, bus_id, bus_slot)) => Link::Shared {
                bus,
                bus_id,
                slot: bus_slot,
            },
            None => match make_transport(&cfg.transport, &w) {
                Some(t) => Link::Private(t),
                None => {
                    // A session whose link cannot be built (no bus
                    // slot registered, socket-pair creation refused)
                    // cannot be simulated; fail it closed.
                    if let Some(p) = poisoned.get_mut(slot) {
                        *p = true;
                    }
                    live.push(None);
                    continue;
                }
            },
        };
        // Mirror `ecq_sts::establish`: one stream per role, initiator
        // first, derived from the pair's wire seed.
        let mut rng = HmacDrbg::new(&w.wire_seed, b"fleet-pair-wire");
        let mut rng_a = HmacDrbg::new(&rng.bytes32(), b"sts-initiator");
        let mut rng_b = HmacDrbg::new(&rng.bytes32(), b"sts-responder");
        let config = StsConfig {
            now: w.now,
            variant: w.variant,
        };
        let lane = w.index as u64;
        live.push(Some(Live {
            index: w.index,
            initiator: StsInitiator::new(w.creds_a, config, &mut rng_a),
            responder: StsResponder::new(w.creds_b, config, &mut rng_b),
            link,
            profiles: [w.preset_a.profile(), w.preset_b.profile()],
            cursors: [0, 0],
            result: SessionResult::empty(),
            last_event_us: 0,
            done: false,
        }));
        scheduler.schedule(0, lane, Event::Kickoff { slot });
    }

    let deadline = cfg.faults.deadline_us;
    while let Some((now, event)) = scheduler.next() {
        if now > deadline {
            break;
        }
        match event {
            Event::Kickoff { slot } => {
                let Some(session) = live.get_mut(slot).and_then(Option::as_mut) else {
                    // State for this slot is gone (broken scheduler
                    // invariant or the poison hook): fail it closed
                    // instead of aborting the worker.
                    if let Some(p) = poisoned.get_mut(slot) {
                        *p = true;
                    }
                    continue;
                };
                session.last_event_us = now;
                match session.step(Role::Initiator, None, now) {
                    Ok((StepOutput::Send(msg), done_at)) => {
                        dispatch_send(session, slot, Role::Initiator, msg, done_at, &mut scheduler);
                    }
                    Ok((_, done_at)) => session.fail(ProtocolError::Stalled, done_at),
                    Err(e) => session.fail(e, now),
                }
            }
            Event::Deliver { slot, to } => {
                let Some(session) = live.get_mut(slot).and_then(Option::as_mut) else {
                    // A delivery for a vanished session: fail the slot
                    // closed, drop the message on the floor.
                    if let Some(p) = poisoned.get_mut(slot) {
                        *p = true;
                    }
                    continue;
                };
                if session.done {
                    continue;
                }
                session.last_event_us = now;
                // Revocation lifecycle: once the CRL has propagated,
                // the targeted session refuses its peer — whatever the
                // handshake state. Deliveries inside the stale-CRL
                // window still succeed (the measurable exposure).
                if let Some(rv) = cfg.revocation {
                    if session.index == rv.session
                        && now >= rv.at_us.saturating_add(rv.propagation_us)
                    {
                        let _ = session.recv_message(to, now);
                        session.fail(ProtocolError::Cert(CertError::Revoked), now);
                        continue;
                    }
                }
                let msg = match session.recv_message(to, now) {
                    Ok(Some(msg)) => msg,
                    Ok(None) => {
                        // A shared-bus delivery can evaporate (the
                        // message was lost to faults after its sibling
                        // scheduled this event, or a replay already
                        // consumed it); a private link's schedule is
                        // exact.
                        debug_assert!(
                            matches!(session.link, Link::Shared { .. }),
                            "private delivery must be due"
                        );
                        continue;
                    }
                    Err(e) => {
                        session.fail(e, now);
                        continue;
                    }
                };
                log.push(DeliveryRecord {
                    session: session.index,
                    step: msg.step,
                    at_us: now,
                });
                match session.step(to, Some(&msg), now) {
                    Ok((StepOutput::Send(reply), done_at)) => {
                        dispatch_send(session, slot, to, reply, done_at, &mut scheduler);
                        // A responder that just sent B2 is established;
                        // the session finishes when the initiator
                        // consumes it.
                    }
                    Ok((_, done_at)) => {
                        if session.initiator.is_established() && session.responder.is_established()
                        {
                            session.finalize(done_at);
                        } else if !session.done {
                            // Waiting with nothing in flight cannot
                            // happen in a two-party alternating
                            // handshake; treat it as a stall.
                            session.fail(ProtocolError::Stalled, done_at);
                        }
                    }
                    Err(e) => session.fail(e, now),
                }
            }
            Event::BusAdvance { bus } => {
                let Some(rc) = buses.get(&bus).map(Rc::clone) else {
                    // An advance for a bus this worker does not own:
                    // skip it — its sessions (if any) resolve through
                    // the fail-closed timeout backstop below.
                    continue;
                };
                let due = rc.borrow_mut().process(now);
                for d in due {
                    let Some(&slot) = slot_of.get(&(bus, d.slot)) else {
                        // An unregistered bus slot cannot be routed;
                        // its session fails closed at the deadline.
                        continue;
                    };
                    // Denied sessions never transmit, so nothing is
                    // ever due for them; route on the session's lane.
                    let lane = live
                        .get(slot)
                        .and_then(Option::as_ref)
                        .map_or(0, |l| l.index as u64);
                    scheduler.schedule(d.at_us, lane, Event::Deliver { slot, to: d.to });
                }
                // `next_activity_us` is strictly beyond `now` once
                // `process(now)` ran, so this re-arm terminates;
                // redundant advances are idempotent.
                let next = rc.borrow().next_activity_us();
                if let Some(at) = next {
                    scheduler.schedule(at, LANE_BUS + bus as u64, Event::BusAdvance { bus });
                }
            }
        }
    }

    // Fail-closed sweep boundary: anything unfinished at the deadline
    // (lost frames, withheld messages, storms that never relented)
    // times out — it must never linger as a half-open session.
    for session in live.iter_mut().flatten() {
        if !session.done {
            let at = if deadline < u64::MAX {
                deadline
            } else {
                session.last_event_us
            };
            session.fail(ProtocolError::Timeout, at);
        }
    }

    let results = live
        .into_iter()
        .zip(poisoned.into_iter().zip(denied_slots))
        .map(|(slot, (was_poisoned, was_denied))| match slot {
            Some(l) => l.result,
            // Denial wins over the poison hook: a denied session never
            // schedules events, so nothing can poison it.
            None if was_denied => {
                let mut r = SessionResult::empty();
                r.denied = true;
                r
            }
            None if was_poisoned => {
                let mut r = SessionResult::empty();
                r.failure = Some(ProtocolError::Poisoned);
                r
            }
            None => SessionResult::empty(),
        })
        .collect();
    let traces = buses
        .into_iter()
        .map(|(bus, rc)| {
            let b = rc.borrow();
            BusTrace {
                bus,
                counters: b.counters(),
                frames: b.frame_log().to_vec(),
            }
        })
        .collect();
    (results, log, traces)
}

/// Hard-errors unless every bus group in `work` is complete: members
/// of bus `b` are exactly the global indices `b·group .. min((b+1)·group,
/// total)`, all present.
fn assert_complete_buses(work: &[SessionWork], group: usize, total: usize) {
    let mut members: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for w in work {
        members.entry(w.index / group).or_default().push(w.index);
    }
    for (bus, mut present) in members {
        present.sort_unstable();
        let start = bus * group;
        let expected: Vec<usize> = (start..(start + group).min(total)).collect();
        assert!(
            present == expected,
            "bus split across sweep shards: bus {bus} needs sessions {expected:?} \
             in one worker but got {present:?} (shard whole buses, not pairs)"
        );
    }
}

/// Builds a private per-session transport. Returns `None` under a
/// shared-bus transport: those sessions ride `Link::Shared`, and a
/// caller that reaches this without a registered bus slot must fail
/// the session closed rather than abort.
fn make_transport(kind: &TransportKind, work: &SessionWork) -> Option<Box<dyn Transport>> {
    match kind {
        TransportKind::Channel { latency_us } => Some(Box::new(ChannelTransport::new(*latency_us))),
        TransportKind::Simnet => Some(Box::new(CanLink::for_pair(
            (work.index & 0xFFFF) as u16,
            &work.preset_a.profile(),
            &work.preset_b.profile(),
        ))),
        TransportKind::SharedBus { .. } => None,
        // Socket-pair creation can fail (fd exhaustion); the caller
        // fails that session closed rather than aborting the sweep.
        TransportKind::Socket => SocketPair::open()
            .ok()
            .map(|pair| Box::new(pair) as Box<dyn Transport>),
    }
}

/// Shards `work` across `threads` workers and returns results in
/// session-index order regardless of the thread count.
///
/// Private-link sessions are dealt round-robin (worker `t` takes
/// indices `t`, `t + threads`, …) rather than in contiguous chunks:
/// device presets rotate through the roster, so striding gives every
/// worker the same preset mix — and therefore the same compute load —
/// instead of leaving the last chunk short. Shared-bus sweeps deal
/// whole *bus groups* round-robin instead (worker `t` takes buses `t`,
/// `t + threads`, …): the bus is the unit of independence, so splitting
/// one across workers is rejected by [`run_worker`]. Either way any
/// partition produces the identical report; only the host wall-clock
/// changes.
pub(crate) fn run_sweep(
    work: Vec<SessionWork>,
    opts: &SweepOptions,
) -> (Vec<SessionResult>, Vec<DeliveryRecord>, Vec<BusTrace>) {
    let total = work.len();
    let group = match opts.transport {
        TransportKind::SharedBus { group } => group.max(1),
        _ => 1,
    };
    let cfg = WorkerConfig {
        transport: opts.transport,
        faults: opts.faults,
        revocation: opts.revocation,
        total,
        poison: opts.poison,
    };
    let bus_count = total.div_ceil(group.max(1)).max(1);
    let threads = opts.threads.max(1).min(bus_count);
    if threads <= 1 {
        return run_worker(work, cfg);
    }
    let mut shards: Vec<Vec<SessionWork>> = (0..threads)
        .map(|_| Vec::with_capacity(total / threads + group))
        .collect();
    for (i, w) in work.into_iter().enumerate() {
        let t = (i / group) % threads;
        // A missing shard (impossible: t < threads) would drop the
        // session, which then surfaces as a poisoned fail-closed
        // result instead of a panic.
        if let Some(s) = shards.get_mut(t) {
            s.push(w);
        }
    }
    let mut results: Vec<Option<SessionResult>> = (0..total).map(|_| None).collect();
    let mut log: Vec<DeliveryRecord> = Vec::new();
    let mut traces: Vec<BusTrace> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .into_iter()
            .map(|shard| scope.spawn(move || run_worker(shard, cfg)))
            .collect();
        for (t, handle) in handles.into_iter().enumerate() {
            let (shard_results, shard_log, shard_traces) =
                handle.join().expect("sweep worker panicked");
            for (j, result) in shard_results.into_iter().enumerate() {
                // Invert the deal rule arithmetically instead of
                // carrying a per-worker index map: worker `t`'s `j`-th
                // session came from its `j / group`-th bus group, whose
                // global group number is `(j / group)·threads + t`.
                // (A partial trailing group is always the globally last
                // one, so every earlier worker-local group is full.)
                let i = ((j / group) * threads + t) * group + (j % group);
                if let Some(slot) = results.get_mut(i) {
                    *slot = Some(result);
                }
            }
            log.extend(shard_log);
            traces.extend(shard_traces);
        }
    });
    traces.sort_by_key(|t| t.bus);
    let results = results
        .into_iter()
        .map(|slot| {
            slot.unwrap_or_else(|| {
                // A scatter bug left this slot unfilled; the session
                // fails closed rather than aborting the sweep.
                let mut r = SessionResult::empty();
                r.failure = Some(ProtocolError::Poisoned);
                r
            })
        })
        .collect();
    (results, log, traces)
}

/// Streams lazily produced work through `threads` workers with at most
/// `opts.max_inflight` sessions resident at once, delivering results to
/// `consume` in **strict session-index order** (so the caller can fold
/// an incremental digest exactly as the materialized path does).
/// Returns the bus traces, sorted by bus id.
///
/// # Architecture
///
/// The calling thread is the producer: it pulls `work` (which may run
/// real enrollment cryptography per pull), chunks it into bus groups —
/// `group` consecutive sessions, the sweep's unit of independence — and
/// deals group `g` to worker `g % threads` over a bounded channel.
/// Workers simulate one group at a time through the same event loop as
/// the materialized path and send `(group, results, traces)` back; a
/// reorder buffer releases them to `consume` in group order.
///
/// # Why the report cannot depend on the window
///
/// A session on a private link — and a whole group on a shared bus —
/// interacts with nothing outside its own work item: the worker event
/// loop's virtual clock never advances an event past its scheduled
/// time (the `schedule` clamp is vacuous because every follow-up is
/// scheduled at or after the event that produced it), so co-residence
/// of other sessions cannot shift a timeline. Each group's results are
/// therefore a pure function of `(config, seed, group)` — identical
/// whether the group ran alone, in a window of 64, or in the fully
/// materialized sweep — and in-order delivery makes the aggregate
/// report bit-identical for any `threads` and any `max_inflight`.
///
/// # Deadlock freedom
///
/// The producer only blocks in two places: a full worker channel (then
/// it drains one result first — a full channel means that worker holds
/// work and will emit), and the final drain (workers hold the only
/// remaining results). The reorder buffer is bounded by the number of
/// admitted-but-undelivered groups, which the channels bound by
/// construction.
pub(crate) fn run_sweep_streaming<I, F>(
    work: I,
    total: usize,
    opts: &SweepOptions,
    mut consume: F,
) -> Vec<BusTrace>
where
    I: Iterator<Item = SessionWork>,
    F: FnMut(usize, SessionResult),
{
    use std::sync::mpsc::{channel, sync_channel, TrySendError};

    let group = match opts.transport {
        TransportKind::SharedBus { group } => group.max(1),
        _ => 1,
    };
    let cfg = WorkerConfig {
        transport: opts.transport,
        faults: opts.faults,
        revocation: opts.revocation,
        total,
        poison: opts.poison,
    };
    let threads = opts.threads.max(1);
    // Per-worker queue depth in groups: the window split across
    // workers, at least one so every worker can hold work — and never
    // more groups than the sweep has (`sync_channel` preallocates its
    // ring, so an unbounded window must not allocate an unbounded one).
    let groups_per_worker = total.div_ceil(group).div_ceil(threads).max(1);
    let cap = (opts.max_inflight.max(group) / threads / group).clamp(1, groups_per_worker);

    let mut traces: Vec<BusTrace> = Vec::new();
    let mut work = work;
    std::thread::scope(|scope| {
        let (res_tx, res_rx) = channel::<(usize, Vec<SessionResult>, Vec<BusTrace>)>();
        let mut feeds = Vec::with_capacity(threads);
        for _ in 0..threads {
            let (tx, rx) = sync_channel::<(usize, Vec<SessionWork>)>(cap);
            let worker_tx = res_tx.clone();
            scope.spawn(move || {
                while let Ok((g, batch)) = rx.recv() {
                    let (results, _log, batch_traces) = run_worker(batch, cfg);
                    if worker_tx.send((g, results, batch_traces)).is_err() {
                        return;
                    }
                }
            });
            feeds.push(tx);
        }
        drop(res_tx);

        // Reorder buffer: completed groups awaiting in-order delivery.
        let mut pending: BTreeMap<usize, Vec<SessionResult>> = BTreeMap::new();
        let mut next_out = 0usize;
        let mut flush = |pending: &mut BTreeMap<usize, Vec<SessionResult>>,
                         next_out: &mut usize| {
            while let Some(results) = pending.remove(next_out) {
                for (j, r) in results.into_iter().enumerate() {
                    consume(*next_out * group + j, r);
                }
                *next_out += 1;
            }
        };

        let mut g = 0usize;
        loop {
            let mut batch = Vec::with_capacity(group);
            while batch.len() < group {
                match work.next() {
                    Some(w) => batch.push(w),
                    None => break,
                }
            }
            if batch.is_empty() {
                break;
            }
            let Some(feed) = feeds.get(g % threads) else {
                break; // unreachable: g % threads < threads
            };
            // Retire everything already finished before admitting more:
            // when workers outpace the producer (enrollment runs on this
            // thread), finished results must fold into `consume` now, not
            // pile up in the unbounded result channel until the final
            // drain — that would grow resident state with fleet size and
            // void the bounded-memory contract.
            while let Ok((done, results, batch_traces)) = res_rx.try_recv() {
                pending.insert(done, results);
                traces.extend(batch_traces);
                flush(&mut pending, &mut next_out);
            }
            let mut msg = (g, batch);
            loop {
                match feed.try_send(msg) {
                    Ok(()) => break,
                    Err(TrySendError::Full(back)) => {
                        msg = back;
                        // Admission is at the window: retire one group
                        // before admitting another.
                        match res_rx.recv() {
                            Ok((done, results, batch_traces)) => {
                                pending.insert(done, results);
                                traces.extend(batch_traces);
                                flush(&mut pending, &mut next_out);
                            }
                            Err(_) => break, // workers gone; scope will surface the panic
                        }
                    }
                    Err(TrySendError::Disconnected(_)) => break,
                }
            }
            g += 1;
        }
        drop(feeds);
        while let Ok((done, results, batch_traces)) = res_rx.recv() {
            pending.insert(done, results);
            traces.extend(batch_traces);
            flush(&mut pending, &mut next_out);
        }
        // A gap can only remain if a worker died mid-stream; deliver
        // what completed (still in order) rather than dropping it.
        for (done, results) in std::mem::take(&mut pending) {
            for (j, r) in results.into_iter().enumerate() {
                consume(done * group + j, r);
            }
        }
    });
    traces.sort_by_key(|t| t.bus);
    traces
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::SimDevice;
    use crate::pool::CaPool;
    use ecq_cert::requester::CertRequester;

    /// Builds real enrolled credentials for `pairs` sessions against a
    /// one-shard CA (the coordinator's enrollment path, condensed).
    fn session_work(pairs: usize) -> Vec<SessionWork> {
        let mut master = HmacDrbg::from_seed(0x7E57_0001);
        let pool = CaPool::new(1, &mut master);
        let mut ca_rng = HmacDrbg::new(&master.bytes32(), b"test-ca");
        let mut ids = Vec::new();
        let mut requesters = Vec::new();
        for i in 0..2 * pairs {
            let device = SimDevice::new(i, 0);
            let mut rng = HmacDrbg::new(&master.bytes32(), b"test-dev");
            requesters.push(CertRequester::generate(device.id, &mut rng));
            ids.push(device.id);
        }
        let requests: Vec<_> = requesters.iter().map(|r| r.request()).collect();
        let ca = pool.shard(0);
        let issued = ca
            .issue_batch(&requests, 0, 86_400, &mut ca_rng)
            .expect("test CA issues");
        let creds: Vec<Credentials> = requesters
            .iter()
            .zip(&issued)
            .zip(&ids)
            .map(|((requester, cert), &id)| {
                let keys = requester
                    .reconstruct(cert, &ca.public_key())
                    .expect("test reconstruction");
                Credentials {
                    id,
                    cert: cert.certificate,
                    keys,
                    ca_public: ca.public_key(),
                }
            })
            .collect();
        let mut creds = creds.into_iter();
        (0..pairs)
            .map(|p| {
                let mut wire_seed = [0u8; 32];
                wire_seed[0] = p as u8;
                SessionWork {
                    index: p,
                    creds_a: creds.next().expect("one credential per endpoint"),
                    creds_b: creds.next().expect("one credential per endpoint"),
                    preset_a: DevicePreset::S32K144,
                    preset_b: DevicePreset::S32K144,
                    wire_seed,
                    now: 1,
                    variant: StsVariant::Conventional,
                    denied: false,
                }
            })
            .collect()
    }

    #[test]
    #[should_panic(expected = "bus split across sweep shards")]
    fn split_bus_group_is_rejected() {
        let mut work = session_work(2);
        work.remove(1); // bus 0 = sessions {0, 1}; hand the worker only 0
        let cfg = WorkerConfig {
            transport: TransportKind::SharedBus { group: 2 },
            faults: FaultSpec::none(),
            revocation: None,
            total: 2,
            poison: None,
        };
        let _ = run_worker(work, cfg);
    }

    #[test]
    fn poisoned_session_fails_closed_while_siblings_complete() {
        let work = session_work(3);
        let cfg = WorkerConfig {
            transport: TransportKind::Simnet,
            faults: FaultSpec::none(),
            revocation: None,
            total: 3,
            poison: Some(1),
        };
        let (results, _log, _traces) = run_worker(work, cfg);
        assert_eq!(results.len(), 3);
        assert_eq!(results[1].failure, Some(ProtocolError::Poisoned));
        assert!(results[1].key.is_none(), "a poisoned session has no key");
        for i in [0usize, 2] {
            assert!(results[i].failure.is_none(), "sibling {i} unaffected");
            assert!(results[i].key.is_some(), "sibling {i} completes");
        }
    }

    #[test]
    fn shared_bus_sessions_complete_with_equal_keys() {
        let work = session_work(2);
        let cfg = WorkerConfig {
            transport: TransportKind::SharedBus { group: 2 },
            faults: FaultSpec::none(),
            revocation: None,
            total: 2,
            poison: None,
        };
        let (results, log, traces) = run_worker(work, cfg);
        assert_eq!(results.len(), 2);
        for r in &results {
            assert!(r.failure.is_none(), "unexpected failure: {:?}", r.failure);
            assert!(r.key.is_some());
            assert_eq!(r.messages, 4);
            assert_eq!(r.frames, 10);
        }
        assert_eq!(log.len(), 8, "4 deliveries per session");
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].counters, FaultCounters::default());
    }

    #[test]
    fn streaming_pump_matches_materialized_for_any_window() {
        let opts_for = |threads: usize| {
            SweepOptions::new()
                .threads(threads)
                .transport(TransportKind::SharedBus { group: 2 })
                .faults(FaultSpec {
                    seed: 11,
                    drop_per_mille: 60,
                    corrupt_per_mille: 40,
                    deadline_us: 30_000_000,
                    ..FaultSpec::none()
                })
        };
        let (baseline, _, base_traces) = run_sweep(session_work(4), &opts_for(1));
        let base_outcomes: Vec<_> = baseline
            .iter()
            .map(|r| (r.key.as_ref().map(|k| *k.as_bytes()), r.failure, r.end_us))
            .collect();
        let base_counters: Vec<_> = base_traces.iter().map(|t| (t.bus, t.counters)).collect();
        for (threads, window) in [(1, 1), (2, 2), (3, 5), (2, usize::MAX)] {
            let opts = opts_for(threads).max_inflight(window);
            let mut delivered: Vec<usize> = Vec::new();
            let mut outcomes: Vec<_> = Vec::new();
            let traces = run_sweep_streaming(session_work(4).into_iter(), 4, &opts, |index, r| {
                delivered.push(index);
                outcomes.push((r.key.as_ref().map(|k| *k.as_bytes()), r.failure, r.end_us));
            });
            assert_eq!(
                delivered,
                vec![0, 1, 2, 3],
                "strict in-order delivery (threads {threads}, window {window})"
            );
            assert_eq!(
                outcomes, base_outcomes,
                "streamed results match materialized (threads {threads}, window {window})"
            );
            let counters: Vec<_> = traces.iter().map(|t| (t.bus, t.counters)).collect();
            assert_eq!(counters, base_counters);
        }
    }

    #[test]
    fn shared_bus_sweep_is_thread_count_invariant() {
        let run = |threads: usize| {
            let opts = SweepOptions::new()
                .threads(threads)
                .transport(TransportKind::SharedBus { group: 2 })
                .faults(FaultSpec {
                    seed: 11,
                    drop_per_mille: 60,
                    corrupt_per_mille: 40,
                    deadline_us: 30_000_000,
                    ..FaultSpec::none()
                });
            let (results, _, traces) = run_sweep(session_work(4), &opts);
            let outcomes: Vec<_> = results
                .iter()
                .map(|r| (r.key.as_ref().map(|k| *k.as_bytes()), r.failure, r.end_us))
                .collect();
            let counters: Vec<_> = traces.iter().map(|t| (t.bus, t.counters)).collect();
            (outcomes, counters)
        };
        let baseline = run(1);
        assert_eq!(baseline, run(2));
        assert_eq!(baseline, run(8));
    }
}
