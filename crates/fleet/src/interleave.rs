//! Message-granularity handshake sweeps: every wire message is its own
//! scheduler event, and device populations shard across host threads.
//!
//! The atomic sweep ([`crate::FleetCoordinator::handshake_sweep`])
//! completes a whole handshake inside one scheduler event — nothing can
//! interleave. This module decomposes each STS establishment into its
//! four wire messages (`A1 B1 A2 B2`): an endpoint's
//! [`ecq_proto::Endpoint::step`] runs when its message *arrives*, its
//! compute time is integrated from the primitive-operation trace it
//! recorded during that step (against the board's `ecq_devices` cost
//! table), and the reply goes back to the transport, which decides the
//! next delivery time. A thousand devices' handshakes genuinely
//! interleave on the virtual timeline, at message granularity.
//!
//! # Parallelism / determinism contract
//!
//! Each pair owns a private point-to-point link (the paper's two-ECU
//! prototype), so sessions share no simulation state; a session's
//! entire result is a pure function of `(config, seed, session index)`.
//! The sweep deals sessions round-robin across the worker threads
//! (balanced shards: the roster's preset rotation gives every worker
//! the same board mix), each worker interleaving its share under its
//! own virtual clock, and results aggregate in session-index order —
//! so a `(config, seed)` report is bit-identical for any worker count.
//! Session state (credentials, RNG seeds) is prepared serially and
//! *moved* into the workers, so the timed sweep region clones no
//! certificates or keys.

use crate::scheduler::{micros_from_ms, EventScheduler, VirtualTime};
use ecq_crypto::HmacDrbg;
use ecq_devices::{DevicePreset, DeviceProfile};
use ecq_proto::transport::{ChannelTransport, Transport};
use ecq_proto::{Credentials, Endpoint, OpTrace, ProtocolError, Role, SessionKey, StepOutput};
use ecq_simnet::CanLink;
use ecq_sts::{StsConfig, StsInitiator, StsResponder, StsVariant};

/// Which link implementation carries the handshake messages.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransportKind {
    /// In-memory channel with a fixed per-message latency (µs).
    Channel {
        /// Per-message delivery latency in virtual microseconds.
        latency_us: u64,
    },
    /// The simulated CAN-FD/ISO-TP stack (`ecq_simnet::CanLink`), with
    /// per-frame driver overhead from the pair's board cost tables.
    Simnet,
}

/// Options for an interleaved sweep.
#[derive(Clone, Copy, Debug)]
pub struct SweepOptions {
    /// Host worker threads to shard the session population across
    /// (clamped to at least 1). The report is identical for any value.
    pub threads: usize,
    /// Link implementation for every pair.
    pub transport: TransportKind,
}

impl Default for SweepOptions {
    /// One worker over the simnet transport.
    fn default() -> Self {
        SweepOptions {
            threads: 1,
            transport: TransportKind::Simnet,
        }
    }
}

/// One delivered wire message, in the order a worker's scheduler popped
/// it (diagnostic evidence of interleaving; not part of the report —
/// pop order is per-worker and therefore depends on the shard layout).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeliveryRecord {
    /// Global session index the message belongs to.
    pub session: usize,
    /// The paper's step label ("A1", "B1", "A2", "B2").
    pub step: &'static str,
    /// Virtual time the message was delivered to its endpoint.
    pub at_us: VirtualTime,
}

/// Everything a worker needs to run one session, prepared serially by
/// the coordinator so RNG streams derive in session-index order.
pub(crate) struct SessionWork {
    pub index: usize,
    pub creds_a: Credentials,
    pub creds_b: Credentials,
    pub preset_a: DevicePreset,
    pub preset_b: DevicePreset,
    /// Per-pair seed for the wire endpoints' DRBG streams.
    pub wire_seed: [u8; 32],
    pub now: u32,
    pub variant: StsVariant,
    /// Pre-checked against the coordinator's revocation list: a denied
    /// session never starts its handshake.
    pub denied: bool,
}

/// Per-session outcome, aggregated in index order.
pub(crate) struct SessionResult {
    pub key: Option<SessionKey>,
    pub failure: Option<ProtocolError>,
    pub end_us: VirtualTime,
    pub messages: u64,
    pub wire_bytes: u64,
    pub frames: u64,
}

/// A live session inside one worker's event loop.
struct Live {
    /// Global session index (for the delivery log; results aggregate
    /// by slot order).
    index: usize,
    initiator: StsInitiator,
    responder: StsResponder,
    transport: Box<dyn Transport>,
    profiles: [DeviceProfile; 2],
    cursors: [usize; 2],
    result: SessionResult,
    done: bool,
}

enum Event {
    /// The initiator opens its handshake (draws no message).
    Kickoff { slot: usize },
    /// A wire message arrives at one endpoint.
    Deliver { slot: usize, to: Role },
}

/// Integrates the primitives an endpoint recorded since the last step.
fn delta_cost_ms(trace: &OpTrace, cursor: &mut usize, profile: &DeviceProfile) -> f64 {
    let entries = trace.entries();
    let cost = entries[*cursor..]
        .iter()
        .map(|e| profile.cost_of(&e.op))
        .sum();
    *cursor = entries.len();
    cost
}

impl Live {
    fn endpoint_mut(&mut self, role: Role) -> &mut dyn Endpoint {
        match role {
            Role::Initiator => &mut self.initiator,
            Role::Responder => &mut self.responder,
        }
    }

    /// Runs one endpoint step and returns `(output, completion time)`;
    /// the completion time charges the step's traced primitives against
    /// the endpoint's board.
    fn step(
        &mut self,
        role: Role,
        incoming: Option<&ecq_proto::Message>,
        now: VirtualTime,
    ) -> Result<(StepOutput, VirtualTime), ProtocolError> {
        let out = self.endpoint_mut(role).step(incoming)?;
        let idx = match role {
            Role::Initiator => 0,
            Role::Responder => 1,
        };
        let trace = match role {
            Role::Initiator => self.initiator.trace(),
            Role::Responder => self.responder.trace(),
        };
        let cost = delta_cost_ms(trace, &mut self.cursors[idx], &self.profiles[idx]);
        Ok((out, now + micros_from_ms(cost)))
    }

    fn finalize(&mut self, end: VirtualTime) {
        debug_assert_eq!(
            self.initiator.session_key().ok().map(|k| *k.as_bytes()),
            self.responder.session_key().ok().map(|k| *k.as_bytes()),
            "both sides must agree on the session key"
        );
        self.result.key = self.initiator.session_key().ok();
        self.result.end_us = end;
        self.result.messages = self.transport.messages_carried();
        self.result.wire_bytes = self.transport.bytes_carried();
        self.result.frames = self.transport.frames_carried();
        self.done = true;
    }

    fn fail(&mut self, err: ProtocolError, at: VirtualTime) {
        self.result.failure = Some(err);
        self.result.end_us = at;
        self.result.messages = self.transport.messages_carried();
        self.result.wire_bytes = self.transport.bytes_carried();
        self.result.frames = self.transport.frames_carried();
        self.done = true;
    }
}

fn make_transport(kind: &TransportKind, work: &SessionWork) -> Box<dyn Transport> {
    match kind {
        TransportKind::Channel { latency_us } => Box::new(ChannelTransport::new(*latency_us)),
        TransportKind::Simnet => Box::new(CanLink::for_pair(
            (work.index & 0xFFFF) as u16,
            &work.preset_a.profile(),
            &work.preset_b.profile(),
        )),
    }
}

/// Runs one worker's share of sessions under a single virtual clock,
/// delivering messages as events. Takes its sessions by value so the
/// prepared credentials move straight into the endpoints — the sweep
/// performs no per-session certificate/key cloning inside the timed
/// region. Returns the per-session results in the order `work` was
/// given, plus this worker's delivery log in scheduler pop order.
fn run_worker(
    work: Vec<SessionWork>,
    transport: TransportKind,
) -> (Vec<SessionResult>, Vec<DeliveryRecord>) {
    let mut live: Vec<Option<Live>> = Vec::with_capacity(work.len());
    let mut log: Vec<DeliveryRecord> = Vec::new();
    let mut scheduler: EventScheduler<Event> = EventScheduler::new();
    for (slot, w) in work.into_iter().enumerate() {
        if w.denied {
            live.push(None);
            continue;
        }
        let link = make_transport(&transport, &w);
        // Mirror `ecq_sts::establish`: one stream per role, initiator
        // first, derived from the pair's wire seed.
        let mut rng = HmacDrbg::new(&w.wire_seed, b"fleet-pair-wire");
        let mut rng_a = HmacDrbg::new(&rng.bytes32(), b"sts-initiator");
        let mut rng_b = HmacDrbg::new(&rng.bytes32(), b"sts-responder");
        let config = StsConfig {
            now: w.now,
            variant: w.variant,
        };
        live.push(Some(Live {
            index: w.index,
            initiator: StsInitiator::new(w.creds_a, config, &mut rng_a),
            responder: StsResponder::new(w.creds_b, config, &mut rng_b),
            transport: link,
            profiles: [w.preset_a.profile(), w.preset_b.profile()],
            cursors: [0, 0],
            result: SessionResult {
                key: None,
                failure: None,
                end_us: 0,
                messages: 0,
                wire_bytes: 0,
                frames: 0,
            },
            done: false,
        }));
        scheduler.schedule_at(0, Event::Kickoff { slot });
    }

    while let Some((now, event)) = scheduler.next_event() {
        match event {
            Event::Kickoff { slot } => {
                let session = live[slot].as_mut().expect("kickoff only for live slots");
                match session.step(Role::Initiator, None, now) {
                    Ok((StepOutput::Send(msg), done_at)) => {
                        let arrival = session.transport.send(Role::Initiator, msg, done_at);
                        scheduler.schedule_at(
                            arrival,
                            Event::Deliver {
                                slot,
                                to: Role::Responder,
                            },
                        );
                    }
                    Ok((_, done_at)) => session.fail(ProtocolError::Stalled, done_at),
                    Err(e) => session.fail(e, now),
                }
            }
            Event::Deliver { slot, to } => {
                let session = live[slot].as_mut().expect("deliveries only for live slots");
                if session.done {
                    continue;
                }
                let msg = session
                    .transport
                    .recv(to, now)
                    .expect("scheduled delivery is due");
                log.push(DeliveryRecord {
                    session: session.index,
                    step: msg.step,
                    at_us: now,
                });
                match session.step(to, Some(&msg), now) {
                    Ok((StepOutput::Send(reply), done_at)) => {
                        let arrival = session.transport.send(to, reply, done_at);
                        scheduler.schedule_at(
                            arrival,
                            Event::Deliver {
                                slot,
                                to: to.peer(),
                            },
                        );
                        // A responder that just sent B2 is established;
                        // the session finishes when the initiator
                        // consumes it.
                    }
                    Ok((_, done_at)) => {
                        if session.initiator.is_established() && session.responder.is_established()
                        {
                            session.finalize(done_at);
                        } else if !session.done {
                            // Waiting with nothing in flight cannot
                            // happen in a two-party alternating
                            // handshake; treat it as a stall.
                            session.fail(ProtocolError::Stalled, done_at);
                        }
                    }
                    Err(e) => session.fail(e, now),
                }
            }
        }
    }

    let results = live
        .into_iter()
        .map(|slot| match slot {
            Some(l) => l.result,
            None => SessionResult {
                key: None,
                failure: None, // the coordinator records the CRL denial
                end_us: 0,
                messages: 0,
                wire_bytes: 0,
                frames: 0,
            },
        })
        .collect();
    (results, log)
}

/// Shards `work` across `threads` workers and returns results in
/// session-index order regardless of the thread count.
///
/// Sessions are dealt round-robin (worker `t` takes indices `t`,
/// `t + threads`, …) rather than in contiguous chunks: device presets
/// rotate through the roster, so striding gives every worker the same
/// preset mix — and therefore the same compute load — instead of
/// leaving the last chunk short. Sessions are independent pure
/// functions of `(config, seed, index)` (see the module docs), so any
/// partition produces the identical report; only the host wall-clock
/// changes.
pub(crate) fn run_sweep(
    work: Vec<SessionWork>,
    threads: usize,
    transport: &TransportKind,
) -> (Vec<SessionResult>, Vec<DeliveryRecord>) {
    let total = work.len();
    let threads = threads.max(1).min(total.max(1));
    if threads <= 1 {
        return run_worker(work, *transport);
    }
    let mut shards: Vec<Vec<SessionWork>> = (0..threads)
        .map(|_| Vec::with_capacity(total / threads + 1))
        .collect();
    for (i, w) in work.into_iter().enumerate() {
        shards[i % threads].push(w);
    }
    let mut results: Vec<Option<SessionResult>> = (0..total).map(|_| None).collect();
    let mut log: Vec<DeliveryRecord> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .into_iter()
            .map(|shard| {
                let kind = *transport;
                scope.spawn(move || run_worker(shard, kind))
            })
            .collect();
        for (t, handle) in handles.into_iter().enumerate() {
            let (shard_results, shard_log) = handle.join().expect("sweep worker panicked");
            for (j, result) in shard_results.into_iter().enumerate() {
                results[t + j * threads] = Some(result);
            }
            log.extend(shard_log);
        }
    });
    let results = results
        .into_iter()
        .map(|slot| slot.expect("every session slot filled exactly once"))
        .collect();
    (results, log)
}
