//! Session timelines in the style of the paper's Fig. 7.

/// What an event represents.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// Cryptographic/computational work on one ECU.
    Compute,
    /// A message crossing the CAN-FD bus.
    Transfer,
}

/// One timeline entry.
#[derive(Clone, Debug)]
pub struct TimelineEvent {
    /// Start time, ms from session begin.
    pub at_ms: f64,
    /// Duration in ms.
    pub duration_ms: f64,
    /// Acting party ("BMS", "EVCC", "bus").
    pub actor: String,
    /// Human-readable label (Fig. 7 vocabulary).
    pub label: String,
    /// Compute or transfer.
    pub kind: EventKind,
}

/// An ordered event log for one session establishment.
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    events: Vec<TimelineEvent>,
    cursor_ms: f64,
}

impl Timeline {
    /// Creates an empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event at the current cursor and advances it.
    pub fn push(&mut self, actor: &str, label: &str, duration_ms: f64, kind: EventKind) {
        self.events.push(TimelineEvent {
            at_ms: self.cursor_ms,
            duration_ms,
            actor: actor.to_string(),
            label: label.to_string(),
            kind,
        });
        self.cursor_ms += duration_ms;
    }

    /// Total elapsed time.
    pub fn total_ms(&self) -> f64 {
        self.cursor_ms
    }

    /// All events in order.
    pub fn events(&self) -> &[TimelineEvent] {
        &self.events
    }

    /// Sum of bus-transfer time.
    pub fn transfer_ms(&self) -> f64 {
        self.events
            .iter()
            .filter(|e| e.kind == EventKind::Transfer)
            .map(|e| e.duration_ms)
            .sum()
    }

    /// Sum of compute time for one actor.
    pub fn compute_ms(&self, actor: &str) -> f64 {
        self.events
            .iter()
            .filter(|e| e.kind == EventKind::Compute && e.actor == actor)
            .map(|e| e.duration_ms)
            .sum()
    }

    /// Renders a Fig.-7-style text timeline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:>10}  {:>10}  {:<6}  {}\n",
            "t [ms]", "dur [ms]", "actor", "event"
        ));
        for e in &self.events {
            out.push_str(&format!(
                "{:>10.3}  {:>10.3}  {:<6}  {}{}\n",
                e.at_ms,
                e.duration_ms,
                e.actor,
                e.label,
                if e.kind == EventKind::Transfer {
                    "  ⇄"
                } else {
                    ""
                }
            ));
        }
        out.push_str(&format!("{:>10.3}  total\n", self.total_ms()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cursor_advances() {
        let mut t = Timeline::new();
        t.push("BMS", "Request gen.", 7.7, EventKind::Compute);
        t.push("bus", "A1", 0.9, EventKind::Transfer);
        t.push("EVCC", "XG gen.", 323.3, EventKind::Compute);
        assert_eq!(t.events().len(), 3);
        assert!((t.total_ms() - 331.9).abs() < 1e-9);
        assert!((t.events()[1].at_ms - 7.7).abs() < 1e-9);
    }

    #[test]
    fn aggregations() {
        let mut t = Timeline::new();
        t.push("BMS", "a", 10.0, EventKind::Compute);
        t.push("bus", "m", 1.0, EventKind::Transfer);
        t.push("EVCC", "b", 20.0, EventKind::Compute);
        t.push("bus", "m2", 2.0, EventKind::Transfer);
        assert_eq!(t.transfer_ms(), 3.0);
        assert_eq!(t.compute_ms("BMS"), 10.0);
        assert_eq!(t.compute_ms("EVCC"), 20.0);
    }

    #[test]
    fn render_contains_rows() {
        let mut t = Timeline::new();
        t.push("BMS", "Request gen.", 7.7, EventKind::Compute);
        let s = t.render();
        assert!(s.contains("Request gen."));
        assert!(s.contains("total"));
    }
}
