//! Adversarial BMS ↔ EVCC runs: the prototype charging scenario under
//! the shared-bus fault catalog.
//!
//! [`crate::scenario::BmsScenario`] reproduces the paper's *benign*
//! measurement (Fig. 7): two S32K144 ECUs, one handshake, an idle bus.
//! This module asks the question §IV of the paper only argues on paper:
//! what happens to that charging-session handshake when the CAN-FD bus
//! misbehaves — frames lost mid-certificate, a corrupted STS response,
//! a replayed first flight, a revocation racing the handshake, a
//! babbling node. Each named scenario from
//! [`ecq_fleet::scenario`] runs on a shared bus carrying the BMS pair
//! *plus* live bystander traffic, and the outcome is reported in the
//! charging-session vocabulary: does the EV start charging, how much
//! later, or which error refused it.

use ecq_fleet::scenario::{by_name, catalog, Scenario};
use ecq_proto::ProtocolError;
use ecq_simnet::FaultCounters;

/// Outcome of one adversarial charging-session run.
#[derive(Clone, Debug)]
pub struct AdversarialReport {
    /// Scenario name (stable CLI identifier).
    pub name: &'static str,
    /// One-line description of the injected fault.
    pub summary: &'static str,
    /// Whether the BMS ↔ EVCC session established (charging can start).
    pub charging_authorized: bool,
    /// The fail-closed error when charging was refused.
    pub refusal: Option<ProtocolError>,
    /// Virtual handshake makespan under the fault, ms.
    pub handshake_ms: f64,
    /// Fault-free makespan of the same fleet, ms.
    pub baseline_ms: f64,
    /// What the fault engine injected on the bus.
    pub faults: FaultCounters,
}

impl AdversarialReport {
    /// Extra latency the fault cost a *successful* session, ms
    /// (0 when the session was refused outright).
    pub fn added_latency_ms(&self) -> f64 {
        if self.charging_authorized {
            (self.handshake_ms - self.baseline_ms).max(0.0)
        } else {
            0.0
        }
    }
}

/// Names of all available adversarial scenarios, catalog order.
pub fn available() -> Vec<&'static str> {
    catalog().iter().map(|s| s.name).collect()
}

/// Runs one named scenario against the BMS prototype fleet.
/// Returns `None` for an unknown name (see [`available`]).
pub fn run(name: &str) -> Option<AdversarialReport> {
    by_name(name).map(run_scenario)
}

/// Runs the whole catalog — the conformance sweep in charging terms.
pub fn run_all() -> Vec<AdversarialReport> {
    catalog().iter().map(run_scenario).collect()
}

fn run_scenario(scenario: &Scenario) -> AdversarialReport {
    let out = scenario.run();
    AdversarialReport {
        name: scenario.name,
        summary: scenario.summary,
        charging_authorized: out.target_keyed,
        refusal: out.target_failure,
        handshake_ms: out.makespan_us as f64 / 1e3,
        baseline_ms: out.baseline_makespan_us as f64 / 1e3,
        faults: out.report.faults,
    }
}

/// Renders one report as a log line (the `fleet --scenario` output).
pub fn render(report: &AdversarialReport) -> String {
    let verdict = if report.charging_authorized {
        format!(
            "charging authorized (+{:.1} ms over baseline)",
            report.added_latency_ms()
        )
    } else {
        match report.refusal {
            Some(e) => format!("charging refused: {e}"),
            None => "charging refused".to_string(),
        }
    };
    format!(
        "{name}: {verdict} [handshake {hs:.1} ms, baseline {base:.1} ms]",
        name = report.name,
        hs = report.handshake_ms,
        base = report.baseline_ms,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecq_fleet::scenario::Expected;

    #[test]
    fn unknown_scenario_is_none() {
        assert!(run("definitely-not-a-scenario").is_none());
        assert!(available().len() >= 8);
    }

    #[test]
    fn corrupted_response_refuses_charging() {
        let report = run("corrupt-b1-auth").expect("catalog scenario");
        assert!(!report.charging_authorized);
        assert_eq!(report.refusal, Some(ProtocolError::AuthenticationFailed));
        assert!(report.faults.corrupted >= 1);
        let line = render(&report);
        assert!(line.contains("refused"), "{line}");
    }

    #[test]
    fn storm_delays_but_authorizes_charging() {
        let report = run("arbitration-storm").expect("catalog scenario");
        assert!(report.charging_authorized);
        assert!(report.refusal.is_none());
        assert!(report.added_latency_ms() > 0.0);
        assert!(report.faults.storm_frames > 0);
        let report = by_name_expected_matches();
        assert!(report, "catalog expectations must stay in sync");
    }

    /// The BMS view and the conformance catalog agree on which
    /// scenarios authorize charging.
    fn by_name_expected_matches() -> bool {
        catalog().iter().all(|s| {
            let authorized = matches!(s.expected, Expected::Completes | Expected::CompletesSlower);
            run(s.name).map(|r| r.charging_authorized) == Some(authorized)
        })
    }
}
