//! The automotive prototype of the paper's §V-C: a battery management
//! system (BMS) controller establishing secure sessions with an
//! electric-vehicle charging controller (EVCC) over CAN-FD.
//!
//! Topology (paper Figs. 1 & 5):
//!
//! * **BMS** and **EVCC** — two S32K144-class ECUs running the session
//!   protocols;
//! * **CA gateway** — a Raspberry-Pi-4-class device handling initial
//!   device authentication and certificate distribution;
//! * a CAN-FD bus (0.5 / 2 Mbit/s) with ISO 15765-2 fragmentation and
//!   the Fig. 6 session header;
//! * a battery-cell emulator generating monitoring traffic through the
//!   established encrypted session.
//!
//! [`scenario::BmsScenario`] reproduces the Fig. 7 timeline: per-step
//! compute time from the device cost model interleaved with per-message
//! CAN-FD transfer time.
//!
//! # Example
//!
//! ```
//! use ecq_bms::scenario::BmsScenario;
//! use ecq_proto::ProtocolKind;
//!
//! let scenario = BmsScenario::new(42);
//! let sts = scenario.run_handshake(ProtocolKind::Sts).unwrap();
//! let s_ecdsa = scenario.run_handshake(ProtocolKind::SEcdsa).unwrap();
//! // The paper's headline: STS costs ~20 % more than static ECDSA.
//! let overhead = sts.total_ms / s_ecdsa.total_ms;
//! assert!(overhead > 1.10 && overhead < 1.40);
//! ```

#![warn(missing_docs)]

pub mod adversarial;
pub mod emulator;
pub mod scenario;
pub mod timeline;

pub use adversarial::AdversarialReport;
pub use scenario::{BmsScenario, SessionReport};
pub use timeline::{EventKind, Timeline, TimelineEvent};
