//! The BMS ↔ EVCC session scenario (paper §V-C, Fig. 7).

use crate::timeline::{EventKind, Timeline};
use ecq_baselines::{poramb, s_ecdsa, scianc};
use ecq_cert::ca::CertificateAuthority;
use ecq_cert::DeviceId;
use ecq_crypto::HmacDrbg;
use ecq_devices::timing::{integrate, pipelined_phases};
use ecq_devices::{DevicePreset, DeviceProfile, PhaseTimes};
use ecq_proto::{Credentials, Endpoint, Message, ProtocolError, ProtocolKind, SessionKey};
use ecq_simnet::app::AppMessage;
use ecq_simnet::canfd::BitTiming;
use ecq_simnet::isotp::{transfer_time_ns, IsoTpConfig};
use ecq_simnet::ns_to_ms;
use ecq_sts::{StsConfig, StsInitiator, StsResponder, StsVariant};

/// Report of one simulated session establishment.
#[derive(Debug)]
pub struct SessionReport {
    /// The protocol that ran.
    pub kind: ProtocolKind,
    /// Total wall time in ms, honouring the variant's pipelining
    /// schedule (eqs. (5)–(8)); for pipelined variants this is less
    /// than the sequential `timeline.total_ms()`.
    pub total_ms: f64,
    /// Total CAN-FD bus time in ms.
    pub bus_ms: f64,
    /// Application-layer handshake bytes (Table II accounting).
    pub handshake_bytes: usize,
    /// The sequential event log (Fig. 7 view).
    pub timeline: Timeline,
    /// Session key derived by the BMS (initiator).
    pub bms_key: SessionKey,
    /// Session key derived by the EVCC (responder).
    pub evcc_key: SessionKey,
}

/// The prototype test bench: two S32K144 ECUs, an RPi4 CA gateway, a
/// CAN-FD bus.
#[derive(Debug)]
pub struct BmsScenario {
    seed: u64,
    /// Device profile of both ECUs (S32K144 in the paper).
    pub ecu_device: DeviceProfile,
    /// CAN-FD bit timing (0.5 / 2 Mbit/s in the paper).
    pub timing: BitTiming,
    /// ISO-TP configuration.
    pub isotp: IsoTpConfig,
    /// Deployment timestamp for certificate validity.
    pub now: u32,
}

impl BmsScenario {
    /// Creates the scenario with the paper's prototype configuration.
    pub fn new(seed: u64) -> Self {
        BmsScenario {
            seed,
            ecu_device: DevicePreset::S32K144.profile(),
            timing: BitTiming::default(),
            isotp: IsoTpConfig::default(),
            now: 10,
        }
    }

    /// Runs the deployment phases (1)–(2): the RPi4 gateway issues
    /// implicit certificates to both ECUs.
    ///
    /// # Errors
    ///
    /// Propagates certificate errors from provisioning.
    pub fn provision(&self) -> Result<(Credentials, Credentials), ecq_cert::CertError> {
        let mut rng = HmacDrbg::from_seed(self.seed);
        let ca = CertificateAuthority::new(DeviceId::from_label("CA-gateway"), &mut rng);
        let bms = Credentials::provision(&ca, DeviceId::from_label("BMS"), 0, 1_000_000, &mut rng)?;
        let evcc =
            Credentials::provision(&ca, DeviceId::from_label("EVCC"), 0, 1_000_000, &mut rng)?;
        Ok((bms, evcc))
    }

    fn build_endpoints(
        &self,
        kind: ProtocolKind,
        bms: Credentials,
        evcc: Credentials,
        rng: &mut HmacDrbg,
    ) -> (Box<dyn Endpoint>, Box<dyn Endpoint>) {
        let mut rng_a = HmacDrbg::new(&rng.bytes32(), b"bms-endpoint");
        let mut rng_b = HmacDrbg::new(&rng.bytes32(), b"evcc-endpoint");
        match kind {
            ProtocolKind::Sts | ProtocolKind::StsOptI | ProtocolKind::StsOptII => {
                let variant = match kind {
                    ProtocolKind::StsOptI => StsVariant::OptimizationI,
                    ProtocolKind::StsOptII => StsVariant::OptimizationII,
                    _ => StsVariant::Conventional,
                };
                let config = StsConfig {
                    now: self.now,
                    variant,
                };
                (
                    Box::new(StsInitiator::new(bms, config, &mut rng_a)),
                    Box::new(StsResponder::new(evcc, config, &mut rng_b)),
                )
            }
            ProtocolKind::SEcdsa | ProtocolKind::SEcdsaExt => {
                let ext = kind == ProtocolKind::SEcdsaExt;
                (
                    Box::new(s_ecdsa::SEcdsaInitiator::new(
                        bms, self.now, ext, &mut rng_a,
                    )),
                    Box::new(s_ecdsa::SEcdsaResponder::new(
                        evcc, self.now, ext, &mut rng_b,
                    )),
                )
            }
            ProtocolKind::Scianc => (
                Box::new(scianc::SciancInitiator::new(bms, self.now, &mut rng_a)),
                Box::new(scianc::SciancResponder::new(evcc, self.now, &mut rng_b)),
            ),
            ProtocolKind::Poramb => {
                // The pre-shared pairwise key comes from provisioning.
                let pairwise = rng.bytes32();
                (
                    Box::new(poramb::PorambInitiator::new(
                        bms, pairwise, self.now, &mut rng_a,
                    )),
                    Box::new(poramb::PorambResponder::new(
                        evcc, pairwise, self.now, &mut rng_b,
                    )),
                )
            }
        }
    }

    /// Runs a full session establishment and returns the Fig. 7-style
    /// report.
    ///
    /// # Errors
    ///
    /// Any [`ProtocolError`] from the handshake.
    pub fn run_handshake(&self, kind: ProtocolKind) -> Result<SessionReport, ProtocolError> {
        let (bms_creds, evcc_creds) = self.provision().map_err(ProtocolError::Cert)?;
        let mut rng = HmacDrbg::from_seed(self.seed ^ 0xB145_0000);
        let (mut bms, mut evcc) = self.build_endpoints(kind, bms_creds, evcc_creds, &mut rng);

        let mut timeline = Timeline::new();
        let mut handshake_bytes = 0usize;
        let mut traced_a = 0usize; // entries already charged, per side
        let mut traced_b = 0usize;
        let session_id = 0x0001;

        let charge = |timeline: &mut Timeline,
                      endpoint: &dyn Endpoint,
                      traced: &mut usize,
                      actor: &str,
                      label: &str| {
            let entries = endpoint.trace().entries();
            let delta = &entries[*traced..];
            *traced = entries.len();
            let mut slice = ecq_proto::OpTrace::new();
            for e in delta {
                slice.record(e.phase, e.op);
            }
            let times = integrate(&slice, &self.ecu_device);
            if times.total() > 0.0 {
                timeline.push(actor, label, times.total(), EventKind::Compute);
            }
            times
        };

        let mut phases_a = PhaseTimes::default();
        let mut phases_b = PhaseTimes::default();

        let mut pending: Option<Message> = bms.start()?;
        phases_a = add_phases(
            phases_a,
            charge(
                &mut timeline,
                bms.as_ref(),
                &mut traced_a,
                "BMS",
                &step_label(kind, "A1", true),
            ),
        );

        let mut sender_is_bms = true;
        while let Some(msg) = pending.take() {
            // Bus transfer through the Fig. 6 stack.
            let app = AppMessage::handshake(session_id, msg.encode());
            handshake_bytes += msg.wire_len();
            let t_ns = transfer_time_ns(app.wire_len(), &self.timing, &self.isotp);
            timeline.push(
                "bus",
                &format!("{} ({} B)", msg.step, msg.wire_len()),
                ns_to_ms(t_ns),
                EventKind::Transfer,
            );

            // Receiver processes.
            let (receiver, traced, actor): (&mut Box<dyn Endpoint>, &mut usize, &str) =
                if sender_is_bms {
                    (&mut evcc, &mut traced_b, "EVCC")
                } else {
                    (&mut bms, &mut traced_a, "BMS")
                };
            let step = msg.step;
            let reply = receiver.on_message(&msg)?;
            let delta = charge(
                &mut timeline,
                receiver.as_ref(),
                traced,
                actor,
                &step_label(kind, step, false),
            );
            if sender_is_bms {
                phases_b = add_phases(phases_b, delta);
            } else {
                phases_a = add_phases(phases_a, delta);
            }
            pending = reply;
            sender_is_bms = !sender_is_bms;
        }

        if !bms.is_established() || !evcc.is_established() {
            return Err(ProtocolError::Stalled);
        }

        // Pipelining saving per eqs. (6)–(8).
        let mut total_ms = timeline.total_ms();
        for phase in pipelined_phases(kind) {
            total_ms -= phases_a.phase(*phase).min(phases_b.phase(*phase));
        }

        Ok(SessionReport {
            kind,
            total_ms,
            bus_ms: timeline.transfer_ms(),
            handshake_bytes,
            timeline,
            bms_key: bms.session_key()?,
            evcc_key: evcc.session_key()?,
        })
    }
}

fn add_phases(mut acc: PhaseTimes, delta: PhaseTimes) -> PhaseTimes {
    acc.op1 += delta.op1;
    acc.op2 += delta.op2;
    acc.op3 += delta.op3;
    acc.op4 += delta.op4;
    acc.other += delta.other;
    acc
}

/// Fig. 7-style labels for the processing that follows each step.
fn step_label(kind: ProtocolKind, step: &str, is_sender_setup: bool) -> String {
    let sts = matches!(
        kind,
        ProtocolKind::Sts | ProtocolKind::StsOptI | ProtocolKind::StsOptII
    );
    match (sts, step, is_sender_setup) {
        (true, "A1", true) => "Request gen. (XG gen.)".into(),
        (true, "A1", false) => "XG gen. & Sign. gen. (Derive Key)".into(),
        (true, "B1", false) => "Calc. Keys & Verify, Create and Enc. Sign.".into(),
        (true, "A2", false) => "Calc. PubK & Verify".into(),
        (true, "B2", false) => "ACK".into(),
        (false, "A1", true) => "Request gen.".into(),
        (false, "A1", false) => "Resp. Sign. gen.".into(),
        (false, "B1", false) => "Verify Resp., Derive Key & Sign. gen.".into(),
        (false, "A2", false) => "Verify Resp. & Derive Key".into(),
        (false, "B2", false) => "ACK".into(),
        _ => format!("{step} processing"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sts_vs_s_ecdsa_overhead_near_paper() {
        // Fig. 7: 3.257 s vs 2.677 s ⇒ +21.67 %. Our model lands in
        // the same band (~+25 % at the protocol level, slightly diluted
        // by shared bus/app overheads).
        let scenario = BmsScenario::new(7);
        let sts = scenario.run_handshake(ProtocolKind::Sts).unwrap();
        let se = scenario.run_handshake(ProtocolKind::SEcdsa).unwrap();
        let ratio = sts.total_ms / se.total_ms;
        assert!(ratio > 1.15 && ratio < 1.35, "ratio {ratio}");
        assert_eq!(sts.bms_key, sts.evcc_key);
    }

    #[test]
    fn bus_time_negligible() {
        // §V-C: "The CAN-FD transfer time over the physical link was
        // negligible (<1 ms)" per message; in total a handful of ms
        // against a 3.6 s handshake.
        let scenario = BmsScenario::new(8);
        let sts = scenario.run_handshake(ProtocolKind::Sts).unwrap();
        assert!(sts.bus_ms < 10.0);
        assert!(sts.bus_ms / sts.total_ms < 0.01);
    }

    #[test]
    fn handshake_bytes_match_table2() {
        let scenario = BmsScenario::new(9);
        assert_eq!(
            scenario
                .run_handshake(ProtocolKind::Sts)
                .unwrap()
                .handshake_bytes,
            491
        );
        assert_eq!(
            scenario
                .run_handshake(ProtocolKind::SEcdsa)
                .unwrap()
                .handshake_bytes,
            427
        );
        assert_eq!(
            scenario
                .run_handshake(ProtocolKind::Poramb)
                .unwrap()
                .handshake_bytes,
            820
        );
    }

    #[test]
    fn opt_variants_cut_total_not_timeline() {
        let scenario = BmsScenario::new(10);
        let sts = scenario.run_handshake(ProtocolKind::Sts).unwrap();
        let opt2 = scenario.run_handshake(ProtocolKind::StsOptII).unwrap();
        assert!(opt2.total_ms < sts.total_ms);
        // The sequential view is unchanged; only the schedule differs.
        assert!(opt2.timeline.total_ms() > opt2.total_ms);
    }

    #[test]
    fn all_protocols_complete() {
        let scenario = BmsScenario::new(11);
        for kind in ProtocolKind::ALL {
            let report = scenario.run_handshake(kind).unwrap();
            assert_eq!(report.bms_key, report.evcc_key, "{kind}");
            assert!(report.total_ms > 0.0);
        }
    }
}
