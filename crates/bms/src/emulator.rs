//! Battery-cell emulator and encrypted monitoring traffic.
//!
//! The paper's test suite connects the BMS to "a battery cell
//! controller and a battery emulator for emulating a functional unit"
//! (Fig. 5). After session establishment, the BMS streams cell
//! measurements to the EVCC through the encrypted session — the
//! "Encrypted Session" of Fig. 1, step 3.
//!
//! Frames are protected with AES-128-CTR under the session encryption
//! key and authenticated with a truncated HMAC under the session MAC
//! key; a per-frame counter provides the CTR nonce and replay ordering.

use ecq_crypto::ctr::aes128_ctr_apply;
use ecq_crypto::hmac::hmac_sha256_concat;
use ecq_crypto::HmacDrbg;
use ecq_proto::SessionKey;
use ecq_simnet::canfd::BitTiming;
use ecq_simnet::isotp::{transfer_time_ns, IsoTpConfig};
use ecq_simnet::ns_to_ms;

/// One battery-cell measurement sample.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CellReading {
    /// Cell index.
    pub cell: u8,
    /// Cell voltage in millivolts.
    pub voltage_mv: u16,
    /// Cell temperature in tenths of a degree Celsius.
    pub temp_dc: i16,
}

impl CellReading {
    /// Serializes to 5 bytes.
    pub fn encode(&self) -> [u8; 5] {
        let mut out = [0u8; 5];
        out[0] = self.cell;
        out[1..3].copy_from_slice(&self.voltage_mv.to_be_bytes());
        out[3..5].copy_from_slice(&self.temp_dc.to_be_bytes());
        out
    }

    /// Parses 5 bytes.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != 5 {
            return None;
        }
        Some(CellReading {
            cell: bytes[0],
            voltage_mv: u16::from_be_bytes([bytes[1], bytes[2]]),
            temp_dc: i16::from_be_bytes([bytes[3], bytes[4]]),
        })
    }
}

/// A simulated battery pack producing plausible readings.
#[derive(Debug)]
pub struct CellEmulator {
    cells: u8,
    rng: HmacDrbg,
}

impl CellEmulator {
    /// Creates an emulator for `cells` cells.
    pub fn new(cells: u8, seed: u64) -> Self {
        CellEmulator {
            cells,
            rng: HmacDrbg::from_seed(seed),
        }
    }

    /// Produces one full scan of the pack (one reading per cell,
    /// jittering around nominal Li-ion values).
    pub fn scan(&mut self) -> Vec<CellReading> {
        (0..self.cells)
            .map(|cell| {
                let jitter = (self.rng.next_u64() % 200) as u16; // ±100 mV band
                let t_jitter = (self.rng.next_u64() % 60) as i16;
                CellReading {
                    cell,
                    voltage_mv: 3600 + jitter,
                    temp_dc: 250 + t_jitter,
                }
            })
            .collect()
    }
}

/// Length of the truncated per-frame MAC.
pub const FRAME_MAC_LEN: usize = 8;

/// An encrypted, authenticated monitoring frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SecureFrame {
    /// Monotonic frame counter (also the CTR nonce seed).
    pub counter: u32,
    /// Encrypted payload.
    pub ciphertext: Vec<u8>,
    /// Truncated HMAC over counter ‖ ciphertext.
    pub mac: [u8; FRAME_MAC_LEN],
}

impl SecureFrame {
    /// Total wire length.
    pub fn wire_len(&self) -> usize {
        4 + self.ciphertext.len() + FRAME_MAC_LEN
    }
}

/// Sender/receiver state for the encrypted monitoring channel.
#[derive(Debug)]
pub struct SecureChannel {
    key: SessionKey,
    next_counter: u32,
}

impl SecureChannel {
    /// Opens a channel over an established session key.
    pub fn new(key: SessionKey) -> Self {
        SecureChannel {
            key,
            next_counter: 0,
        }
    }

    fn nonce_for(counter: u32) -> [u8; 12] {
        let mut nonce = [0u8; 12];
        nonce[0] = 0xD0; // monitoring-data direction tag
        nonce[8..].copy_from_slice(&counter.to_be_bytes());
        nonce
    }

    /// Encrypts and authenticates one payload.
    pub fn seal(&mut self, payload: &[u8]) -> SecureFrame {
        let counter = self.next_counter;
        self.next_counter += 1;
        let mut ciphertext = payload.to_vec();
        aes128_ctr_apply(
            &self.key.enc_key(),
            &Self::nonce_for(counter),
            &mut ciphertext,
        );
        let tag = hmac_sha256_concat(&self.key.mac_key(), &[&counter.to_be_bytes(), &ciphertext]);
        let mut mac = [0u8; FRAME_MAC_LEN];
        mac.copy_from_slice(&tag[..FRAME_MAC_LEN]);
        SecureFrame {
            counter,
            ciphertext,
            mac,
        }
    }

    /// Verifies and decrypts one frame; enforces strictly increasing
    /// counters (replay protection).
    pub fn open(&mut self, frame: &SecureFrame) -> Option<Vec<u8>> {
        if frame.counter < self.next_counter {
            return None; // replay
        }
        let tag = hmac_sha256_concat(
            &self.key.mac_key(),
            &[&frame.counter.to_be_bytes(), &frame.ciphertext],
        );
        if !ecq_crypto::ct::eq(&tag[..FRAME_MAC_LEN], &frame.mac) {
            return None;
        }
        self.next_counter = frame.counter + 1;
        let mut plaintext = frame.ciphertext.clone();
        aes128_ctr_apply(
            &self.key.enc_key(),
            &Self::nonce_for(frame.counter),
            &mut plaintext,
        );
        Some(plaintext)
    }
}

/// Statistics of a monitoring run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonitoringReport {
    /// Scans transmitted.
    pub scans: usize,
    /// Total application bytes.
    pub bytes: usize,
    /// Total bus time in ms.
    pub bus_ms: f64,
    /// Whether every frame authenticated and decrypted correctly.
    pub all_verified: bool,
}

/// Streams `scans` pack scans from BMS to EVCC through the secure
/// channel and the CAN-FD/ISO-TP stack, verifying on the receiver.
pub fn run_monitoring(
    bms_key: SessionKey,
    evcc_key: SessionKey,
    cells: u8,
    scans: usize,
    seed: u64,
) -> MonitoringReport {
    let timing = BitTiming::default();
    let isotp = IsoTpConfig::default();
    let mut emulator = CellEmulator::new(cells, seed);
    let mut tx = SecureChannel::new(bms_key);
    let mut rx = SecureChannel::new(evcc_key);

    let mut bytes = 0usize;
    let mut bus_ns = 0u64;
    let mut all_verified = true;

    for _ in 0..scans {
        let readings = emulator.scan();
        let payload: Vec<u8> = readings.iter().flat_map(|r| r.encode()).collect();
        let frame = tx.seal(&payload);
        bytes += frame.wire_len();
        bus_ns += transfer_time_ns(frame.wire_len(), &timing, &isotp);
        match rx.open(&frame) {
            Some(plain) => {
                let decoded: Vec<CellReading> =
                    plain.chunks(5).filter_map(CellReading::decode).collect();
                if decoded != readings {
                    all_verified = false;
                }
            }
            None => all_verified = false,
        }
    }

    MonitoringReport {
        scans,
        bytes,
        bus_ms: ns_to_ms(bus_ns),
        all_verified,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(tag: u8) -> SessionKey {
        SessionKey::from_bytes([tag; 32])
    }

    #[test]
    fn seal_open_roundtrip() {
        let mut tx = SecureChannel::new(key(1));
        let mut rx = SecureChannel::new(key(1));
        let frame = tx.seal(b"cell data");
        assert_eq!(rx.open(&frame).unwrap(), b"cell data");
    }

    #[test]
    fn replay_rejected() {
        let mut tx = SecureChannel::new(key(2));
        let mut rx = SecureChannel::new(key(2));
        let f1 = tx.seal(b"a");
        let f2 = tx.seal(b"b");
        assert!(rx.open(&f1).is_some());
        assert!(rx.open(&f2).is_some());
        assert!(rx.open(&f1).is_none(), "replayed frame must be rejected");
    }

    #[test]
    fn tamper_rejected() {
        let mut tx = SecureChannel::new(key(3));
        let mut rx = SecureChannel::new(key(3));
        let mut frame = tx.seal(b"data");
        frame.ciphertext[0] ^= 1;
        assert!(rx.open(&frame).is_none());
    }

    #[test]
    fn wrong_key_rejected() {
        let mut tx = SecureChannel::new(key(4));
        let mut rx = SecureChannel::new(key(5));
        let frame = tx.seal(b"data");
        assert!(rx.open(&frame).is_none());
    }

    #[test]
    fn monitoring_run_verifies_end_to_end() {
        let report = run_monitoring(key(6), key(6), 12, 20, 99);
        assert!(report.all_verified);
        assert_eq!(report.scans, 20);
        // 12 cells × 5 B + 12 B frame overhead, 20 scans.
        assert_eq!(report.bytes, 20 * (12 * 5 + 12));
        assert!(report.bus_ms > 0.0);
    }

    #[test]
    fn monitoring_with_mismatched_keys_fails() {
        let report = run_monitoring(key(7), key(8), 4, 2, 100);
        assert!(!report.all_verified);
    }

    #[test]
    fn reading_encoding_roundtrip() {
        let r = CellReading {
            cell: 3,
            voltage_mv: 3712,
            temp_dc: -105,
        };
        assert_eq!(CellReading::decode(&r.encode()), Some(r));
        assert_eq!(CellReading::decode(&[0u8; 4]), None);
    }

    #[test]
    fn emulator_readings_plausible() {
        let mut e = CellEmulator::new(8, 1);
        let scan = e.scan();
        assert_eq!(scan.len(), 8);
        for r in &scan {
            assert!(r.voltage_mv >= 3600 && r.voltage_mv < 3800);
            assert!(r.temp_dc >= 250 && r.temp_dc < 310);
        }
    }
}
