//! Bus-level integration: handshake frames share the CAN-FD bus with
//! higher-priority battery telemetry, exercising arbitration and
//! occupancy accounting.

use ecq_bms::BmsScenario;
use ecq_proto::ProtocolKind;
use ecq_simnet::bus::CanBus;
use ecq_simnet::canfd::{BitTiming, CanFdFrame};
use ecq_simnet::isotp::{segment, IsoTpConfig};

/// Telemetry uses a lower CAN id (higher priority) than the handshake.
const TELEMETRY_ID: u16 = 0x050;
const HANDSHAKE_ID: u16 = 0x100;

#[test]
fn handshake_frames_yield_to_priority_telemetry() {
    let scenario = BmsScenario::new(0xB05);
    let report = scenario.run_handshake(ProtocolKind::Sts).unwrap();

    // Re-play the recorded handshake bytes as ISO-TP frames on a bus
    // where periodic telemetry contends.
    let mut bus = CanBus::new(BitTiming::default());
    let config = IsoTpConfig {
        tx_id: HANDSHAKE_ID,
        ..IsoTpConfig::default()
    };

    // One large handshake message (B1-sized).
    let payload = vec![0xAB; 245];
    for frame in segment(&payload, &config).unwrap() {
        bus.submit(0, frame);
    }
    // Telemetry ready at the same instant.
    for i in 0..3 {
        bus.submit(0, CanFdFrame::new(TELEMETRY_ID, &[i as u8; 8]));
    }

    let deliveries = bus.run();
    assert_eq!(deliveries.len(), 4 + 3);
    // All telemetry wins arbitration over every handshake frame that
    // was simultaneously pending.
    let first_three: Vec<u16> = deliveries.iter().take(3).map(|d| d.frame.id).collect();
    assert_eq!(first_three, vec![TELEMETRY_ID; 3]);
    // The handshake still completes afterwards, strictly serialized.
    let mut last = 0;
    for d in &deliveries {
        assert!(d.completed_at > last);
        last = d.completed_at;
    }

    // Occupancy sanity: the entire contended exchange still fits in
    // ~3 ms of bus time — invisible next to the 3.6 s handshake.
    assert!(bus.busy_until() < 3_000_000, "{}", bus.busy_until());
    assert!(report.total_ms > 1000.0);
}

#[test]
fn corrupted_handshake_frame_detected_at_transport() {
    // Failure injection: a bit flip inside a consecutive frame's PCI
    // produces a sequence error at the receiver, not silent corruption.
    use ecq_simnet::isotp::{IsoTpError, Reassembler};
    let config = IsoTpConfig::default();
    let frames = segment(&vec![0x42; 300], &config).unwrap();
    let mut r = Reassembler::new();
    r.accept(&frames[0]).unwrap();
    let mut corrupted = frames[1].clone();
    corrupted.payload[0] ^= 0x01; // flips the CF sequence number
    assert_eq!(r.accept(&corrupted).unwrap_err(), IsoTpError::SequenceError);
}

#[test]
fn corrupted_handshake_payload_detected_at_protocol() {
    // A payload corruption that survives the transport layer must be
    // caught by the protocol's authentication (bit flip inside Resp_B).
    use ecq_crypto::HmacDrbg;
    use ecq_proto::{Endpoint as _, FieldKind, ProtocolError};
    use ecq_sts::{StsConfig, StsInitiator, StsResponder};

    let scenario = BmsScenario::new(0xC0);
    let (bms, evcc) = scenario.provision().unwrap();
    let mut rng_a = HmacDrbg::from_seed(1);
    let mut rng_b = HmacDrbg::from_seed(2);
    let cfg = StsConfig {
        now: 10,
        ..StsConfig::default()
    };
    let mut alice = StsInitiator::new(bms, cfg, &mut rng_a);
    let mut bob = StsResponder::new(evcc, cfg, &mut rng_b);
    let a1 = alice.start().unwrap().unwrap();
    let mut b1 = bob.on_message(&a1).unwrap().unwrap();
    for f in &mut b1.fields {
        if f.kind == FieldKind::Response {
            f.bytes[30] ^= 0x10;
        }
    }
    assert_eq!(
        alice.on_message(&b1).unwrap_err(),
        ProtocolError::AuthenticationFailed
    );
}
