//! An `ecq_proto` transport over the simulated CAN-FD stack.
//!
//! [`CanLink`] carries one handshake's wire messages across the Fig. 6
//! stack: each [`Message`] is wrapped in the session-layer
//! [`AppMessage`] header, segmented into CAN-FD frames by the ISO
//! 15765-2 layer, and the frames are *actually routed* through the
//! shared [`CanBus`] — so the two directions contend for the medium,
//! bus occupancy delays later messages, and every payload is reassembled
//! back from the delivered frames before the typed message is handed to
//! the receiver (a byte-level integrity check of the whole path, every
//! send).
//!
//! Per-link latency therefore has three components:
//!
//! 1. frame transmission time from the [`BitTiming`] bit-level model
//!    (nominal + data phase, stuffing estimate),
//! 2. the ISO-TP flow-control round (one FC frame after the FF, plus
//!    STmin gaps when configured),
//! 3. per-frame driver overhead on each endpoint's board, taken from
//!    the `ecq_devices` cost tables ([`CanLink::for_pair`]): moving a
//!    64-byte frame through an ISR and a copy is charged as one SHA-256
//!    block time on that board — a deliberately small, board-scaled
//!    stand-in (the paper's point stands: transfer time is negligible
//!    against the EC arithmetic).

use crate::app::AppMessage;
use crate::bus::CanBus;
use crate::canfd::BitTiming;
use crate::isotp::{flow_control_frame, segment, IsoTpConfig, Reassembler};
use crate::{ms_to_ns, SimNanos};
use ecq_devices::DeviceProfile;
use ecq_proto::transport::{DirectionalQueues, Transport, TransportTime};
use ecq_proto::{Message, Role, TransportError};

/// Per-frame driver overhead of the two endpoints, in nanoseconds
/// (indexed by [`role_index`]).
type Overheads = [SimNanos; 2];

fn role_index(role: Role) -> usize {
    match role {
        Role::Initiator => 0,
        Role::Responder => 1,
    }
}

/// A point-to-point CAN-FD link between one handshake's initiator and
/// responder, implementing the `ecq_proto` [`Transport`] contract on
/// virtual microseconds.
#[derive(Debug)]
pub struct CanLink {
    bus: CanBus,
    timing: BitTiming,
    /// ISO-TP configs per sending role (distinct arbitration ids so the
    /// two directions arbitrate honestly on the shared bus).
    isotp: [IsoTpConfig; 2],
    /// Per-frame driver overhead per role, ns.
    overhead_ns: Overheads,
    session_id: u16,
    queues: DirectionalQueues,
    bytes: u64,
    messages: u64,
    frames: u64,
}

impl CanLink {
    /// Creates a link with the paper's prototype bit timing, default
    /// ISO-TP parameters and no per-frame driver overhead.
    pub fn new(session_id: u16) -> Self {
        CanLink::with_overheads(session_id, [0, 0])
    }

    /// Creates a link whose per-frame driver overhead comes from the
    /// two endpoints' board cost tables (one SHA-256 block time per
    /// frame on each side — ISR plus copy).
    pub fn for_pair(session_id: u16, initiator: &DeviceProfile, responder: &DeviceProfile) -> Self {
        CanLink::with_overheads(
            session_id,
            [
                ms_to_ns(initiator.costs.hash_block_ms),
                ms_to_ns(responder.costs.hash_block_ms),
            ],
        )
    }

    fn with_overheads(session_id: u16, overhead_ns: Overheads) -> Self {
        CanLink {
            bus: CanBus::new(BitTiming::default()),
            timing: BitTiming::default(),
            isotp: [
                // Initiator transmits on 0x100 (wins arbitration, like
                // the opening ECU of the prototype); responder on 0x102.
                IsoTpConfig {
                    tx_id: 0x100,
                    fc_id: 0x103,
                    ..IsoTpConfig::default()
                },
                IsoTpConfig {
                    tx_id: 0x102,
                    fc_id: 0x101,
                    ..IsoTpConfig::default()
                },
            ],
            overhead_ns,
            session_id,
            queues: DirectionalQueues::new(),
            bytes: 0,
            messages: 0,
            frames: 0,
        }
    }
}

impl Transport for CanLink {
    /// Pushes `message` through app-header encapsulation, ISO-TP
    /// segmentation and the shared bus; the returned delivery time
    /// includes frame times, bus occupancy, the flow-control round and
    /// both boards' per-frame driver overhead.
    ///
    /// # Panics
    ///
    /// Panics if the reassembled bytes do not reproduce the submitted
    /// message — that would be a transport-stack bug, never an input
    /// condition (handshake messages are far below the ISO-TP limit).
    fn send_frame(
        &mut self,
        from: Role,
        message: Message,
        now_us: TransportTime,
    ) -> Result<TransportTime, TransportError> {
        let config = self.isotp[role_index(from)];
        let encoded = message.encode();
        let payload = AppMessage::handshake(self.session_id, encoded.clone()).encode();
        let frames = segment(&payload, &config).expect("handshake messages fit ISO-TP");

        // Sender-side driver overhead: the k-th frame is ready only
        // after k ISR slots.
        let now_ns = now_us * 1_000;
        let tx_overhead = self.overhead_ns[role_index(from)];
        for (k, frame) in frames.iter().enumerate() {
            self.bus
                .submit(now_ns + tx_overhead * (k as SimNanos + 1), frame.clone());
        }
        let deliveries = self.bus.run();

        // Reassemble from what the bus actually delivered — the typed
        // message the receiver gets is validated against these bytes.
        let mut reassembler = Reassembler::new();
        let mut last_ns: SimNanos = now_ns;
        let mut rebuilt = None;
        for d in &deliveries {
            if d.frame.id != config.tx_id {
                continue;
            }
            last_ns = last_ns.max(d.completed_at);
            if let Some(bytes) = reassembler
                .accept(&d.frame)
                .expect("own segmentation is valid")
            {
                rebuilt = Some(bytes);
            }
        }
        let rebuilt = rebuilt.expect("all frames delivered in one bus drain");
        let app = AppMessage::decode(&rebuilt).expect("app header intact");
        assert_eq!(app.data, encoded, "byte path must be lossless");

        // Flow-control round (receiver → sender after the FF) and STmin
        // gaps, accounted analytically on top of the data-frame times.
        if frames.len() > 1 {
            last_ns += flow_control_frame(&config).frame_time_ns(&self.timing);
            last_ns += (config.st_min_us as SimNanos) * 1_000 * (frames.len() as SimNanos - 1);
        }
        // Receiver-side driver overhead for every frame.
        last_ns += self.overhead_ns[role_index(from.peer())] * frames.len() as SimNanos;

        self.bytes += message.wire_len() as u64;
        self.messages += 1;
        self.frames += frames.len() as u64;

        // DirectionalQueues clamps the delivery to FIFO order within
        // the direction (a small late message can otherwise undercut a
        // still-in-flight multi-frame one, since the FC round and
        // receiver overhead are accounted analytically off-bus).
        Ok(self
            .queues
            .push(from.peer(), last_ns.div_ceil(1_000).max(now_us), message))
    }

    fn recv_frame(
        &mut self,
        to: Role,
        now_us: TransportTime,
        _deadline_us: TransportTime,
    ) -> Result<Option<Message>, TransportError> {
        Ok(self.queues.pop_due(to, now_us))
    }

    fn next_delivery(&self, to: Role) -> Option<TransportTime> {
        self.queues.next_delivery(to)
    }

    fn bytes_carried(&self) -> u64 {
        self.bytes
    }

    fn messages_carried(&self) -> u64 {
        self.messages
    }

    /// CAN-FD data frames moved across the bus so far.
    fn frames_carried(&self) -> u64 {
        self.frames
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecq_proto::{FieldKind, WireField};

    fn sts_b1() -> Message {
        // The largest STS handshake message (245 B, Table II).
        Message::new(
            "B1",
            vec![
                WireField::new(FieldKind::Id, vec![7; 16]),
                WireField::new(FieldKind::Cert, vec![8; 101]),
                WireField::new(FieldKind::EphemeralPoint, vec![9; 64]),
                WireField::new(FieldKind::Response, vec![10; 64]),
            ],
        )
    }

    fn ack() -> Message {
        Message::new("B2", vec![WireField::new(FieldKind::Ack, vec![1])])
    }

    #[test]
    fn typed_message_survives_the_byte_path() {
        let mut link = CanLink::new(42);
        let msg = sts_b1();
        let at = link.send_frame(Role::Responder, msg.clone(), 0).unwrap();
        assert!(at > 0, "frame time must be positive");
        assert!(link
            .recv_frame(Role::Initiator, at - 1, at - 1)
            .unwrap()
            .is_none());
        assert_eq!(
            link.recv_frame(Role::Initiator, at, at).unwrap().unwrap(),
            msg
        );
        assert_eq!(link.bytes_carried(), 245);
        // 245 B + 4 B app header → FF + 3 CFs.
        assert_eq!(link.frames_carried(), 4);
    }

    #[test]
    fn largest_message_crosses_in_about_a_millisecond() {
        // The paper: CAN-FD transfer was "negligible (<1 ms)"; our
        // model with the FC round lands under 2 ms for the 245 B B1.
        let mut link = CanLink::new(1);
        let at = link.send_frame(Role::Responder, sts_b1(), 0).unwrap();
        assert!(at < 2_000, "B1 took {at} µs");
        let mut link = CanLink::new(1);
        let at = link.send_frame(Role::Responder, ack(), 0).unwrap();
        assert!(at < 500, "ACK took {at} µs");
    }

    #[test]
    fn bus_occupancy_serializes_directions() {
        let mut link = CanLink::new(1);
        let t1 = link.send_frame(Role::Initiator, sts_b1(), 0).unwrap();
        // Submitted while the bus is still moving the first message:
        // the second must wait for the medium.
        let mut exclusive = CanLink::new(1);
        let t2_alone = exclusive.send_frame(Role::Responder, sts_b1(), 0).unwrap();
        let t2_contended = link.send_frame(Role::Responder, sts_b1(), 0).unwrap();
        assert!(t2_contended > t2_alone);
        assert!(t2_contended > t1);
    }

    #[test]
    fn device_overhead_slows_the_link() {
        use ecq_devices::DevicePreset;
        let fast = DevicePreset::RaspberryPi4.profile();
        let slow = DevicePreset::ATmega2560.profile();
        let mut plain = CanLink::new(1);
        let mut loaded = CanLink::for_pair(1, &fast, &slow);
        let t_plain = plain.send_frame(Role::Initiator, sts_b1(), 0).unwrap();
        let t_loaded = loaded.send_frame(Role::Initiator, sts_b1(), 0).unwrap();
        assert!(t_loaded > t_plain);
    }

    #[test]
    fn small_message_cannot_overtake_a_large_one() {
        // The FC round and receiver overhead of a multi-frame message
        // are charged off-bus, so a single-frame message submitted
        // right behind it would otherwise compute an earlier delivery;
        // the queue clamps it to FIFO order.
        use ecq_devices::DevicePreset;
        let slow = DevicePreset::ATmega2560.profile();
        let mut link = CanLink::for_pair(1, &slow, &slow);
        let t_big = link.send_frame(Role::Initiator, sts_b1(), 0).unwrap();
        let t_small = link.send_frame(Role::Initiator, ack(), 0).unwrap();
        assert!(t_small >= t_big, "FIFO per direction: {t_small} < {t_big}");
        assert_eq!(
            link.recv_frame(Role::Responder, t_small, t_small)
                .unwrap()
                .unwrap()
                .step,
            "B1"
        );
        assert_eq!(
            link.recv_frame(Role::Responder, t_small, t_small)
                .unwrap()
                .unwrap()
                .step,
            "B2"
        );
    }

    #[test]
    fn link_is_deterministic() {
        let run = || {
            let mut link = CanLink::new(9);
            let a = link.send_frame(Role::Initiator, ack(), 10).unwrap();
            let b = link.send_frame(Role::Responder, sts_b1(), a).unwrap();
            (a, b)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn fifo_and_next_delivery() {
        let mut link = CanLink::new(3);
        let t1 = link.send_frame(Role::Initiator, ack(), 0).unwrap();
        let t2 = link.send_frame(Role::Initiator, sts_b1(), t1).unwrap();
        assert_eq!(link.next_delivery(Role::Responder), Some(t1));
        assert_eq!(
            link.recv_frame(Role::Responder, t2, t2)
                .unwrap()
                .unwrap()
                .step,
            "B2"
        );
        assert_eq!(link.next_delivery(Role::Responder), Some(t2));
        assert_eq!(
            link.recv_frame(Role::Responder, t2, t2)
                .unwrap()
                .unwrap()
                .step,
            "B1"
        );
        assert_eq!(link.next_delivery(Role::Responder), None);
        assert_eq!(link.messages_carried(), 2);
    }
}
