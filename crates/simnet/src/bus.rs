//! A discrete-event CAN bus.
//!
//! The bus serializes frame transmissions: one frame occupies the
//! medium at a time, and when several nodes contend, the lowest CAN
//! identifier wins arbitration (ISO 11898 priority). The BMS prototype
//! scenario drives this with a simple transmit/deliver loop; the event
//! queue keeps the model honest when the battery emulator traffic
//! overlaps the handshake.

use crate::canfd::{BitTiming, CanFdFrame};
use crate::SimNanos;
use std::collections::BinaryHeap;

/// A frame queued for transmission.
#[derive(Clone, Debug, PartialEq, Eq)]
struct PendingTx {
    ready_at: SimNanos,
    frame: CanFdFrame,
    /// Monotonic tiebreaker for equal (time, id).
    seq: u64,
}

impl Ord for PendingTx {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first, then
        // lowest-id-first (arbitration), then FIFO.
        other
            .ready_at
            .cmp(&self.ready_at)
            .then(other.frame.id.cmp(&self.frame.id))
            .then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for PendingTx {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A delivered frame with its completion timestamp.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Delivery {
    /// When the last bit left the bus.
    pub completed_at: SimNanos,
    /// The frame.
    pub frame: CanFdFrame,
}

/// The shared bus.
#[derive(Debug)]
pub struct CanBus {
    timing: BitTiming,
    queue: BinaryHeap<PendingTx>,
    busy_until: SimNanos,
    seq: u64,
    deliveries: Vec<Delivery>,
}

impl CanBus {
    /// Creates a bus with the given bit timing.
    pub fn new(timing: BitTiming) -> Self {
        CanBus {
            timing,
            queue: BinaryHeap::new(),
            busy_until: 0,
            seq: 0,
            deliveries: Vec::new(),
        }
    }

    /// Queues a frame for transmission at (or after) `ready_at`.
    pub fn submit(&mut self, ready_at: SimNanos, frame: CanFdFrame) {
        self.queue.push(PendingTx {
            ready_at,
            frame,
            seq: self.seq,
        });
        self.seq += 1;
    }

    /// Runs the bus until the queue drains; returns all deliveries in
    /// completion order.
    pub fn run(&mut self) -> Vec<Delivery> {
        while let Some(tx) = self.pop_next() {
            let start = tx.ready_at.max(self.busy_until);
            let done = start + tx.frame.frame_time_ns(&self.timing);
            self.busy_until = done;
            self.deliveries.push(Delivery {
                completed_at: done,
                frame: tx.frame,
            });
        }
        std::mem::take(&mut self.deliveries)
    }

    /// Pops the next frame honouring arbitration: among frames ready
    /// by the time the bus frees, the lowest identifier wins.
    fn pop_next(&mut self) -> Option<PendingTx> {
        let mut ready: Vec<PendingTx> = Vec::new();
        // Drain candidates that are ready when the bus becomes free.
        while let Some(top) = self.queue.peek() {
            if top.ready_at <= self.busy_until || ready.is_empty() {
                ready.push(self.queue.pop().expect("peeked"));
            } else {
                break;
            }
        }
        if ready.is_empty() {
            return None;
        }
        // Arbitrate among the ready set.
        let winner_idx = ready
            .iter()
            .enumerate()
            .min_by_key(|(_, tx)| (tx.ready_at.max(self.busy_until), tx.frame.id, tx.seq))
            .map(|(i, _)| i)
            .expect("non-empty");
        let winner = ready.swap_remove(winner_idx);
        for tx in ready {
            self.queue.push(tx);
        }
        Some(winner)
    }

    /// The time the bus frees after everything submitted so far.
    pub fn busy_until(&self) -> SimNanos {
        self.busy_until
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_serialize_in_time_order() {
        let mut bus = CanBus::new(BitTiming::default());
        bus.submit(0, CanFdFrame::new(0x200, &[1; 8]));
        bus.submit(1_000_000, CanFdFrame::new(0x100, &[2; 8]));
        let out = bus.run();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].frame.id, 0x200); // earlier submission goes first
        assert!(out[0].completed_at < out[1].completed_at);
    }

    #[test]
    fn arbitration_prefers_low_id_when_contending() {
        let mut bus = CanBus::new(BitTiming::default());
        // Both ready at t=0: the lower id must win.
        bus.submit(0, CanFdFrame::new(0x300, &[1; 8]));
        bus.submit(0, CanFdFrame::new(0x100, &[2; 8]));
        let out = bus.run();
        assert_eq!(out[0].frame.id, 0x100);
        assert_eq!(out[1].frame.id, 0x300);
    }

    #[test]
    fn bus_occupancy_delays_later_frames() {
        let mut bus = CanBus::new(BitTiming::default());
        let f = CanFdFrame::new(0x100, &[0; 64]);
        let t_frame = f.frame_time_ns(&BitTiming::default());
        bus.submit(0, f.clone());
        bus.submit(0, f);
        let out = bus.run();
        assert_eq!(out[0].completed_at, t_frame);
        assert_eq!(out[1].completed_at, 2 * t_frame);
    }

    #[test]
    fn idle_gap_preserved() {
        let mut bus = CanBus::new(BitTiming::default());
        bus.submit(10_000_000, CanFdFrame::new(0x100, &[0; 8]));
        let out = bus.run();
        assert!(out[0].completed_at > 10_000_000);
    }
}
