//! ISO 15765-2 (CAN-TP) transport over CAN-FD.
//!
//! The paper's prototype uses "the CAN-FD derivation with an
//! implemented CAN-TP layer for message fragmentation" \[20\]. This
//! module implements the four N_PDU types over 64-byte CAN-FD frames:
//!
//! * **SF** single frame — payloads up to 62 bytes
//!   (escaped FD encoding: PCI `0x00`, length byte);
//! * **FF** first frame — PCI `0x1L LL` with the 12-bit total length;
//! * **CF** consecutive frame — PCI `0x2S` with a 4-bit sequence
//!   number;
//! * **FC** flow control — `0x30`, block size, STmin.
//!
//! [`segment`] splits a payload, [`Reassembler`] rebuilds it, and
//! [`transfer_time_ns`] accounts the full exchange including flow
//! control and inter-frame separation.

use crate::canfd::{BitTiming, CanFdFrame, MAX_PAYLOAD};
use crate::SimNanos;

/// Maximum payload of an escaped-SF over CAN-FD (64 − 2 PCI bytes).
pub const SF_CAPACITY: usize = MAX_PAYLOAD - 2;
/// Payload carried by a first frame (64 − 2 PCI bytes).
pub const FF_CAPACITY: usize = MAX_PAYLOAD - 2;
/// Payload carried by each consecutive frame (64 − 1 PCI byte).
pub const CF_CAPACITY: usize = MAX_PAYLOAD - 1;
/// Maximum total message length (12-bit FF length field).
pub const MAX_MESSAGE: usize = 4095;

/// Transport-layer configuration (flow-control parameters).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IsoTpConfig {
    /// CAN identifier used for data frames.
    pub tx_id: u16,
    /// CAN identifier used for flow-control frames (receiver → sender).
    pub fc_id: u16,
    /// Block size: CFs per flow-control round (0 = unlimited).
    pub block_size: u8,
    /// Minimum separation time between CFs, in microseconds.
    pub st_min_us: u32,
}

impl Default for IsoTpConfig {
    fn default() -> Self {
        IsoTpConfig {
            tx_id: 0x100,
            fc_id: 0x101,
            block_size: 0, // no blocking: one FC after the FF
            st_min_us: 0,
        }
    }
}

/// Errors from the transport layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IsoTpError {
    /// Payload exceeds the 12-bit length field.
    TooLong,
    /// A frame's PCI was malformed or unexpected.
    ProtocolViolation,
    /// A consecutive frame arrived with the wrong sequence number.
    SequenceError,
}

impl core::fmt::Display for IsoTpError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            IsoTpError::TooLong => write!(f, "message exceeds ISO-TP length limit"),
            IsoTpError::ProtocolViolation => write!(f, "malformed or unexpected N_PDU"),
            IsoTpError::SequenceError => write!(f, "consecutive-frame sequence mismatch"),
        }
    }
}

impl std::error::Error for IsoTpError {}

/// Segments `payload` into CAN-FD frames (without flow control, which
/// the receiver interleaves).
///
/// # Errors
///
/// [`IsoTpError::TooLong`] for payloads above [`MAX_MESSAGE`].
pub fn segment(payload: &[u8], config: &IsoTpConfig) -> Result<Vec<CanFdFrame>, IsoTpError> {
    if payload.len() > MAX_MESSAGE {
        return Err(IsoTpError::TooLong);
    }
    if payload.len() <= SF_CAPACITY {
        // Escaped single frame: [0x00, len, data…]
        let mut bytes = Vec::with_capacity(payload.len() + 2);
        bytes.push(0x00);
        bytes.push(payload.len() as u8);
        bytes.extend_from_slice(payload);
        return Ok(vec![CanFdFrame::new(config.tx_id, &bytes)]);
    }
    let mut frames = Vec::new();
    // First frame: [0x10 | len_hi, len_lo, data…]
    let len = payload.len();
    let mut bytes = Vec::with_capacity(MAX_PAYLOAD);
    bytes.push(0x10 | ((len >> 8) as u8 & 0x0F));
    bytes.push((len & 0xFF) as u8);
    bytes.extend_from_slice(&payload[..FF_CAPACITY]);
    frames.push(CanFdFrame::new(config.tx_id, &bytes));

    let mut offset = FF_CAPACITY;
    let mut seq: u8 = 1;
    while offset < len {
        let take = (len - offset).min(CF_CAPACITY);
        let mut bytes = Vec::with_capacity(take + 1);
        bytes.push(0x20 | (seq & 0x0F));
        bytes.extend_from_slice(&payload[offset..offset + take]);
        frames.push(CanFdFrame::new(config.tx_id, &bytes));
        offset += take;
        seq = (seq + 1) & 0x0F;
    }
    Ok(frames)
}

/// Builds a flow-control frame (`FC.CTS`).
pub fn flow_control_frame(config: &IsoTpConfig) -> CanFdFrame {
    let st_min_encoded = if config.st_min_us == 0 {
        0x00
    } else if config.st_min_us < 1000 {
        // 100–900 µs range encodes as 0xF1–0xF9.
        0xF0 + (config.st_min_us / 100).clamp(1, 9) as u8
    } else {
        (config.st_min_us / 1000).min(0x7F) as u8
    };
    CanFdFrame::new(config.fc_id, &[0x30, config.block_size, st_min_encoded])
}

/// Streaming reassembler for one inbound ISO-TP message.
#[derive(Debug, Default)]
pub struct Reassembler {
    buffer: Vec<u8>,
    expected_len: usize,
    next_seq: u8,
    in_progress: bool,
}

impl Reassembler {
    /// Creates an idle reassembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether a multi-frame message is mid-reassembly.
    pub fn in_progress(&self) -> bool {
        self.in_progress
    }

    /// Feeds one data frame. Returns the completed message when the
    /// last frame arrives.
    ///
    /// # Errors
    ///
    /// [`IsoTpError::ProtocolViolation`] or
    /// [`IsoTpError::SequenceError`] on malformed input; the
    /// reassembler resets itself on error.
    pub fn accept(&mut self, frame: &CanFdFrame) -> Result<Option<Vec<u8>>, IsoTpError> {
        let result = self.accept_inner(frame);
        if result.is_err() {
            *self = Self::default();
        }
        result
    }

    fn accept_inner(&mut self, frame: &CanFdFrame) -> Result<Option<Vec<u8>>, IsoTpError> {
        let bytes = &frame.payload;
        if bytes.is_empty() {
            return Err(IsoTpError::ProtocolViolation);
        }
        match bytes[0] >> 4 {
            0x0 => {
                // Escaped SF: [0x00, len, data…]
                if self.in_progress || bytes.len() < 2 || bytes[0] != 0x00 {
                    return Err(IsoTpError::ProtocolViolation);
                }
                let len = bytes[1] as usize;
                if len > SF_CAPACITY || bytes.len() < 2 + len {
                    return Err(IsoTpError::ProtocolViolation);
                }
                Ok(Some(bytes[2..2 + len].to_vec()))
            }
            0x1 => {
                if self.in_progress || bytes.len() < 2 {
                    return Err(IsoTpError::ProtocolViolation);
                }
                let len = (((bytes[0] & 0x0F) as usize) << 8) | bytes[1] as usize;
                if len <= SF_CAPACITY {
                    return Err(IsoTpError::ProtocolViolation);
                }
                self.buffer.clear();
                self.buffer
                    .extend_from_slice(&bytes[2..(2 + FF_CAPACITY).min(bytes.len())]);
                self.expected_len = len;
                self.next_seq = 1;
                self.in_progress = true;
                Ok(None)
            }
            0x2 => {
                if !self.in_progress {
                    return Err(IsoTpError::ProtocolViolation);
                }
                let seq = bytes[0] & 0x0F;
                if seq != self.next_seq {
                    return Err(IsoTpError::SequenceError);
                }
                self.next_seq = (self.next_seq + 1) & 0x0F;
                let remaining = self.expected_len - self.buffer.len();
                let take = remaining.min(CF_CAPACITY).min(bytes.len() - 1);
                self.buffer.extend_from_slice(&bytes[1..1 + take]);
                if self.buffer.len() == self.expected_len {
                    self.in_progress = false;
                    Ok(Some(std::mem::take(&mut self.buffer)))
                } else {
                    Ok(None)
                }
            }
            0x3 => Ok(None), // FC frames are handled by the sender side
            _ => Err(IsoTpError::ProtocolViolation),
        }
    }
}

/// Total bus time to move `payload_len` bytes through ISO-TP,
/// including the FF→FC round trip, per-block flow control and STmin
/// gaps. This is the per-message cost the Fig. 7 timeline charges.
pub fn transfer_time_ns(payload_len: usize, timing: &BitTiming, config: &IsoTpConfig) -> SimNanos {
    let payload = vec![0u8; payload_len];
    let frames = segment(&payload, config).expect("length validated by caller");
    let mut total: SimNanos = 0;
    for f in &frames {
        total += f.frame_time_ns(timing);
    }
    if frames.len() > 1 {
        let fc = flow_control_frame(config);
        // One FC after the FF, plus one per full block of CFs.
        let cf_count = frames.len() - 1;
        let fc_rounds = if config.block_size == 0 {
            1
        } else {
            1 + (cf_count.saturating_sub(1)) / config.block_size as usize
        };
        total += fc.frame_time_ns(timing) * fc_rounds as u64;
        total += (config.st_min_us as u64) * 1000 * cf_count as u64;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(len: usize) {
        let payload: Vec<u8> = (0..len).map(|i| (i * 7 + 3) as u8).collect();
        let config = IsoTpConfig::default();
        let frames = segment(&payload, &config).unwrap();
        let mut r = Reassembler::new();
        let mut out = None;
        for f in &frames {
            out = r.accept(f).unwrap();
        }
        assert_eq!(out.expect("message completes"), payload, "len {len}");
    }

    #[test]
    fn single_frame_roundtrip() {
        for len in [0usize, 1, 32, 61, 62] {
            roundtrip(len);
        }
    }

    #[test]
    fn multi_frame_roundtrip() {
        // The handshake message sizes of Table II, plus boundaries.
        for len in [
            63usize, 64, 80, 101, 125, 126, 165, 197, 245, 427, 491, 820, 4095,
        ] {
            roundtrip(len);
        }
    }

    #[test]
    fn too_long_rejected() {
        let config = IsoTpConfig::default();
        assert_eq!(
            segment(&vec![0u8; 4096], &config).unwrap_err(),
            IsoTpError::TooLong
        );
    }

    #[test]
    fn frame_counts() {
        let config = IsoTpConfig::default();
        assert_eq!(segment(&[0u8; 62], &config).unwrap().len(), 1);
        // 245 B (STS B1): FF carries 62, then ceil(183/63) = 3 CFs.
        assert_eq!(segment(&[0u8; 245], &config).unwrap().len(), 4);
    }

    #[test]
    fn sequence_error_detected_and_resets() {
        let config = IsoTpConfig::default();
        let frames = segment(&[0u8; 200], &config).unwrap();
        let mut r = Reassembler::new();
        r.accept(&frames[0]).unwrap();
        // Skip CF #1, deliver CF #2.
        assert_eq!(r.accept(&frames[2]).unwrap_err(), IsoTpError::SequenceError);
        assert!(!r.in_progress());
    }

    #[test]
    fn cf_without_ff_rejected() {
        let config = IsoTpConfig::default();
        let frames = segment(&[0u8; 200], &config).unwrap();
        let mut r = Reassembler::new();
        assert_eq!(
            r.accept(&frames[1]).unwrap_err(),
            IsoTpError::ProtocolViolation
        );
    }

    #[test]
    fn fc_frames_ignored_by_reassembler() {
        let config = IsoTpConfig::default();
        let mut r = Reassembler::new();
        assert_eq!(r.accept(&flow_control_frame(&config)).unwrap(), None);
    }

    #[test]
    fn handshake_messages_under_two_ms() {
        // The paper: "The CAN-FD transfer time over the physical link
        // was negligible (< 1 ms)" per message; our model with the FC
        // round trip lands at or below ~1.6 ms for the largest STS
        // message and well under 1 ms for single-frame messages.
        let timing = BitTiming::default();
        let config = IsoTpConfig::default();
        for len in [80usize, 165, 245] {
            let t = transfer_time_ns(len, &timing, &config);
            assert!(t < 2_000_000, "{len} B took {t} ns");
        }
        assert!(transfer_time_ns(1, &timing, &config) < 500_000);
    }

    #[test]
    fn st_min_adds_gaps() {
        let timing = BitTiming::default();
        let fast = IsoTpConfig::default();
        let slow = IsoTpConfig {
            st_min_us: 1000,
            ..fast
        };
        let t_fast = transfer_time_ns(245, &timing, &fast);
        let t_slow = transfer_time_ns(245, &timing, &slow);
        assert_eq!(t_slow - t_fast, 3 * 1000 * 1000); // 3 CFs × 1 ms
    }

    #[test]
    fn block_size_adds_fc_rounds() {
        let timing = BitTiming::default();
        let unblocked = IsoTpConfig::default();
        let blocked = IsoTpConfig {
            block_size: 1,
            ..unblocked
        };
        assert!(
            transfer_time_ns(245, &timing, &blocked) > transfer_time_ns(245, &timing, &unblocked)
        );
    }
}
