//! A multi-session CAN-FD bus with deterministic arbitration and
//! fault injection.
//!
//! [`CanLink`](crate::CanLink) gives every handshake a pristine private
//! medium; real harnesses share one. [`SharedBus`] carries *many*
//! sessions' ISO-TP traffic over a single arbitrated medium, processed
//! incrementally so an external event scheduler can interleave bus
//! time with endpoint compute:
//!
//! * every session gets a **slot** with its own arbitration-id block
//!   (`0x100 + 4·slot`), so earlier slots win arbitration exactly like
//!   lower-ID ECUs on a bench harness;
//! * [`SharedBus::send`] segments a typed handshake [`Message`] and
//!   queues its frames with sender-side driver overhead and any
//!   fault-plan effects (drop/corrupt/duplicate/hold-back/delay/
//!   replay/skew) already decided — decisions are pure functions of
//!   `(spec.seed, bus id, sequence numbers)`, so the schedule is
//!   reproducible for any caller interleaving;
//! * [`SharedBus::process`] advances arbitration up to a virtual time:
//!   whenever the bus is free, the lowest-ID ready frame (ties by
//!   submission order) transmits and occupies the medium — including
//!   frames from a babbling node, which are counted and discarded;
//! * reassembled payloads are matched back to the *typed* message that
//!   produced them: byte-identical payloads deliver the original
//!   message, corrupted-but-well-formed payloads are re-decoded
//!   through the original field layout (so corruption surfaces as the
//!   protocol-level error the paper predicts, e.g. a bad `Resp` fails
//!   authentication), and everything else — truncated reassembly,
//!   sequence errors, PCI damage — is counted and *lost*, never
//!   misdelivered.
//!
//! Every transmitted frame is appended to a [`FrameRecord`] log; the
//! fleet layer pins a two-session interleaving of this log as a golden
//! fixture.

use crate::app::AppMessage;
use crate::canfd::{BitTiming, CanFdFrame, MAX_PAYLOAD};
use crate::fault::{FaultAction, FaultPlan, FrameFate};
use crate::isotp::{flow_control_frame, segment, IsoTpConfig, Reassembler};
use crate::SimNanos;
use ecq_proto::transport::{DirectionalQueues, TransportTime};
use ecq_proto::{FieldKind, Message, Role};
use std::collections::BTreeMap;

/// Marks the replayed copy of a message in the pending-message keyspace.
const REPLAY_BIT: u64 = 1 << 63;

fn role_index(role: Role) -> usize {
    match role {
        Role::Initiator => 0,
        Role::Responder => 1,
    }
}

/// A delivery that became due during [`SharedBus::process`]: the typed
/// message is queued on the slot's receive queue and can be read with
/// [`SharedBus::recv`] from `at_us` on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeliveryDue {
    /// Bus slot the message belongs to.
    pub slot: usize,
    /// Receiving role.
    pub to: Role,
    /// Virtual delivery time, µs.
    pub at_us: TransportTime,
}

/// One transmitted frame in the bus schedule log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrameRecord {
    /// Bus-wide submission sequence number.
    pub seq: u64,
    /// Arbitration identifier.
    pub id: u16,
    /// Originating slot (`None` for babble-storm frames).
    pub slot: Option<usize>,
    /// Sending role (`None` for babble-storm frames).
    pub sender: Option<Role>,
    /// N_PDU kind (`SF`/`FF`/`CF`) or `RAW` for storm frames.
    pub kind: &'static str,
    /// What the fault engine did to the frame.
    pub fate: &'static str,
    /// Transmission start, ns.
    pub start_ns: SimNanos,
    /// Transmission end, ns.
    pub completed_ns: SimNanos,
}

/// Aggregate fault-engine activity, summed into the fleet report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Frames transmitted but discarded by the receiver.
    pub dropped: u64,
    /// Frames delivered with a corrupted payload byte.
    pub corrupted: u64,
    /// Extra frame copies injected by duplication.
    pub duplicated: u64,
    /// Frames whose readiness was deferred past their successors.
    pub held_back: u64,
    /// Messages shifted whole by the delay class.
    pub delayed: u64,
    /// Messages retransmitted in full by a replay fault.
    pub replayed: u64,
    /// Babble frames that occupied the bus.
    pub storm_frames: u64,
    /// ISO-TP reassembly errors observed at receivers.
    pub isotp_errors: u64,
    /// Messages sent but never delivered (final accounting — only
    /// meaningful once the bus has drained).
    pub messages_lost: u64,
}

/// Per-slot traffic totals (the [`Transport`](ecq_proto::transport::Transport)
/// counters of a private link, kept per session here).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SlotStats {
    /// Typed messages submitted by the session's endpoints.
    pub messages: u64,
    /// Payload bytes of those messages.
    pub bytes: u64,
    /// Data frames queued for them (excluding fault-injected copies).
    pub frames: u64,
}

/// A typed message awaiting reassembly confirmation at the receiver.
#[derive(Debug)]
struct PendingTyped {
    original: Message,
    encoded: Vec<u8>,
    frames: u64,
}

/// One frame queued for (or awaiting) bus arbitration.
#[derive(Debug)]
struct QueuedFrame {
    ready_ns: SimNanos,
    seq: u64,
    frame: CanFdFrame,
    origin: Option<FrameOrigin>,
    fate: FrameFate,
    kind: &'static str,
}

#[derive(Clone, Copy, Debug)]
struct FrameOrigin {
    slot: usize,
    sender: Role,
    msg_key: u64,
}

#[derive(Debug)]
struct SlotState {
    session_id: u16,
    /// ISO-TP configs per *sending* role.
    isotp: [IsoTpConfig; 2],
    /// Per-frame driver overhead per role, ns.
    overhead_ns: [SimNanos; 2],
    /// Reassemblers per *receiving* role.
    reassembler: [Reassembler; 2],
    /// In-flight typed messages per *receiving* role, keyed by the
    /// per-direction message counter.
    pending_typed: [BTreeMap<u64, PendingTyped>; 2],
    /// The message key the receiver's reassembler is currently working
    /// on (set by the SF/FF that opened it).
    current_key: [Option<u64>; 2],
    /// Messages sent per direction (also the next message key).
    msg_seq: [u64; 2],
    queues: DirectionalQueues,
    stats: SlotStats,
    delivered: u64,
}

/// The shared, fault-injected, incrementally processed CAN-FD bus.
#[derive(Debug)]
pub struct SharedBus {
    plan: FaultPlan,
    timing: BitTiming,
    slots: Vec<SlotState>,
    pending: Vec<QueuedFrame>,
    busy_until_ns: SimNanos,
    next_seq: u64,
    /// Bus-wide message counter (the delay-class dice key).
    msg_counter: u64,
    counters: FaultCounters,
    log: Vec<FrameRecord>,
}

impl SharedBus {
    /// Creates a bus under `plan`, materializing any babble-storm
    /// frames up front (they contend for arbitration like any node).
    ///
    /// # Panics
    ///
    /// Panics when the babble spec names an id outside 11 bits, a
    /// payload above 64 bytes, or a zero period over a non-empty
    /// window.
    pub fn new(plan: FaultPlan) -> Self {
        let mut bus = SharedBus {
            plan,
            timing: BitTiming::default(),
            slots: Vec::new(),
            pending: Vec::new(),
            busy_until_ns: 0,
            next_seq: 0,
            msg_counter: 0,
            counters: FaultCounters::default(),
            log: Vec::new(),
        };
        if let Some(b) = plan.spec().babble {
            assert!(b.id < 0x800, "babble id must fit 11 bits");
            assert!(b.payload_len <= MAX_PAYLOAD, "babble payload too large");
            assert!(
                b.period_us > 0 || b.start_us >= b.end_us,
                "babble period must be positive"
            );
            let payload = vec![0x55u8; b.payload_len];
            let mut t = b.start_us;
            while t < b.end_us {
                let seq = bus.next_seq;
                bus.next_seq += 1;
                bus.pending.push(QueuedFrame {
                    ready_ns: t.saturating_mul(1_000),
                    seq,
                    frame: CanFdFrame::new(b.id, &payload),
                    origin: None,
                    fate: FrameFate::Deliver,
                    kind: "RAW",
                });
                t += b.period_us;
            }
        }
        bus
    }

    /// Registers a session on the bus; returns its slot index. Each
    /// slot gets a 4-id arbitration block at `0x100 + 4·slot`
    /// (initiator data/FC, responder data/FC), so slot order is
    /// arbitration priority.
    ///
    /// # Panics
    ///
    /// Panics when the id block would leave the 11-bit space (~440
    /// sessions per bus).
    pub fn add_slot(&mut self, session_id: u16, overhead_ns: [SimNanos; 2]) -> usize {
        let slot = self.slots.len();
        let base = 0x100u16 + 4 * slot as u16;
        assert!(base + 3 < 0x800, "arbitration id space exhausted");
        self.slots.push(SlotState {
            session_id,
            isotp: [
                IsoTpConfig {
                    tx_id: base,
                    fc_id: base + 3,
                    ..IsoTpConfig::default()
                },
                IsoTpConfig {
                    tx_id: base + 2,
                    fc_id: base + 1,
                    ..IsoTpConfig::default()
                },
            ],
            overhead_ns,
            reassembler: [Reassembler::new(), Reassembler::new()],
            pending_typed: [BTreeMap::new(), BTreeMap::new()],
            current_key: [None, None],
            msg_seq: [0, 0],
            queues: DirectionalQueues::new(),
            stats: SlotStats::default(),
            delivered: 0,
        });
        slot
    }

    /// Number of registered slots.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    fn alloc_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Submits a typed handshake message from `from` on `slot` at
    /// virtual time `now_us`. Frames are queued for arbitration with
    /// all fault-plan effects applied; deliveries surface later from
    /// [`SharedBus::process`].
    ///
    /// # Panics
    ///
    /// Panics when `slot` is unregistered (handshake messages always
    /// fit ISO-TP, so segmentation cannot fail).
    pub fn send(&mut self, slot: usize, from: Role, message: Message, now_us: TransportTime) {
        let tx = role_index(from);
        let rx = role_index(from.peer());
        let config = self.slots[slot].isotp[tx];
        let encoded = message.encode();
        let payload = AppMessage::handshake(self.slots[slot].session_id, encoded.clone()).encode();
        let frames = segment(&payload, &config).expect("handshake messages fit ISO-TP");

        let msg_index = self.slots[slot].msg_seq[tx];
        self.slots[slot].msg_seq[tx] += 1;
        let bus_msg = self.msg_counter;
        self.msg_counter += 1;

        let now_ns = now_us.saturating_mul(1_000);
        let delay = self.plan.message_delay_ns(bus_msg);
        if delay > 0 {
            self.counters.delayed += 1;
        }
        let base_ns = now_ns + delay + self.plan.skew_delay_ns(from, now_ns);
        let tx_overhead = self.slots[slot].overhead_ns[tx];

        self.slots[slot].stats.messages += 1;
        self.slots[slot].stats.bytes += message.wire_len() as u64;
        self.slots[slot].stats.frames += frames.len() as u64;
        let replay = self.plan.replay_delay_ns(slot, from, msg_index as usize);
        self.slots[slot].pending_typed[rx].insert(
            msg_index,
            PendingTyped {
                original: message.clone(),
                encoded: encoded.clone(),
                frames: frames.len() as u64,
            },
        );
        if replay.is_some() {
            self.counters.replayed += 1;
            self.slots[slot].pending_typed[rx].insert(
                msg_index | REPLAY_BIT,
                PendingTyped {
                    original: message,
                    encoded,
                    frames: frames.len() as u64,
                },
            );
        }

        for (k, frame) in frames.iter().enumerate() {
            let seq = self.alloc_seq();
            let mut ready = base_ns + tx_overhead * (k as SimNanos + 1);
            let mut fate = self.plan.frame_fate(seq);
            let mut duplicate = self.plan.duplicates(seq);
            let hold = self.plan.hold_back_ns(seq);
            if hold > 0 {
                self.counters.held_back += 1;
                ready += hold;
            }
            match self.plan.targeted(slot, from, msg_index as usize, k) {
                Some(FaultAction::Drop) => fate = FrameFate::Drop,
                Some(FaultAction::Corrupt { offset }) => fate = FrameFate::Corrupt { offset },
                Some(FaultAction::Duplicate) => duplicate = true,
                Some(FaultAction::HoldBack { ns }) => {
                    self.counters.held_back += 1;
                    ready += ns;
                }
                // Message-level actions are excluded by `targeted`.
                Some(FaultAction::ReplayMessage { .. }) | None => {}
            }
            let kind = pci_kind(frame);
            let origin = Some(FrameOrigin {
                slot,
                sender: from,
                msg_key: msg_index,
            });
            self.pending.push(QueuedFrame {
                ready_ns: ready,
                seq,
                frame: frame.clone(),
                origin,
                fate,
                kind,
            });
            if duplicate {
                self.counters.duplicated += 1;
                let seq = self.alloc_seq();
                self.pending.push(QueuedFrame {
                    ready_ns: ready,
                    seq,
                    frame: frame.clone(),
                    origin,
                    fate: FrameFate::Deliver,
                    kind,
                });
            }
        }
        if let Some(replay_ns) = replay {
            for (k, frame) in frames.iter().enumerate() {
                let seq = self.alloc_seq();
                self.pending.push(QueuedFrame {
                    ready_ns: base_ns + tx_overhead * (k as SimNanos + 1) + replay_ns,
                    seq,
                    frame: frame.clone(),
                    origin: Some(FrameOrigin {
                        slot,
                        sender: from,
                        msg_key: msg_index | REPLAY_BIT,
                    }),
                    fate: FrameFate::Deliver,
                    kind: pci_kind(frame),
                });
            }
        }
    }

    /// Advances bus arbitration up to `now_us`: while the medium is
    /// free before `now`, the lowest-ID ready frame (ties broken by
    /// submission order) transmits and occupies it. Returns the typed
    /// deliveries that completed.
    pub fn process(&mut self, now_us: TransportTime) -> Vec<DeliveryDue> {
        let now_ns = now_us.saturating_mul(1_000);
        let mut due = Vec::new();
        while let Some(min_ready) = self.pending.iter().map(|f| f.ready_ns).min() {
            let start = min_ready.max(self.busy_until_ns);
            if start > now_ns {
                break;
            }
            let winner = self
                .pending
                .iter()
                .enumerate()
                .filter(|(_, f)| f.ready_ns <= start)
                .min_by_key(|(_, f)| (f.frame.id, f.seq))
                .map(|(i, _)| i)
                .expect("the min-ready frame qualifies");
            let queued = self.pending.remove(winner);
            let completed = start + queued.frame.frame_time_ns(&self.timing);
            self.busy_until_ns = completed;
            self.log.push(FrameRecord {
                seq: queued.seq,
                id: queued.frame.id,
                slot: queued.origin.map(|o| o.slot),
                sender: queued.origin.map(|o| o.sender),
                kind: queued.kind,
                fate: fate_label(&queued),
                start_ns: start,
                completed_ns: completed,
            });
            match queued.origin {
                None => self.counters.storm_frames += 1,
                Some(origin) => match queued.fate {
                    FrameFate::Drop => self.counters.dropped += 1,
                    fate => {
                        let mut frame = queued.frame;
                        if let FrameFate::Corrupt { offset } = fate {
                            frame.corrupt_byte(offset);
                            self.counters.corrupted += 1;
                        }
                        if let Some(d) = self.feed(origin, &frame, completed) {
                            due.push(d);
                        }
                    }
                },
            }
        }
        due
    }

    /// Feeds one transmitted frame to its receiver's reassembler and,
    /// on message completion, resolves the bytes back to a typed
    /// message (original, re-decoded-corrupt, or lost).
    fn feed(
        &mut self,
        origin: FrameOrigin,
        frame: &CanFdFrame,
        completed_ns: SimNanos,
    ) -> Option<DeliveryDue> {
        let receiver = origin.sender.peer();
        let rx = role_index(receiver);
        let slot = &mut self.slots[origin.slot];
        // An SF/FF names the in-flight message the reassembler is now
        // working on; CFs inherit it. A scrambled interleaving (frame
        // of message N landing mid-reassembly of message N+1) shows up
        // as a reassembly error below, never as a misdelivery.
        if let Some(&pci) = frame.payload.first() {
            if matches!(pci >> 4, 0x0 | 0x1) {
                slot.current_key[rx] = Some(origin.msg_key);
            }
        }
        match slot.reassembler[rx].accept(frame) {
            Err(_) => {
                slot.current_key[rx] = None;
                self.counters.isotp_errors += 1;
                None
            }
            Ok(None) => None,
            Ok(Some(payload)) => {
                let key = slot.current_key[rx].take()?;
                let entry = slot.pending_typed[rx].remove(&key)?;
                let app = AppMessage::decode(&payload)?;
                let message = if app.data == entry.encoded {
                    entry.original
                } else if app.data.len() == entry.encoded.len() {
                    // Well-formed but corrupted: rebuild through the
                    // original field layout so the damage surfaces at
                    // the protocol layer (bad Resp → auth failure).
                    let kinds: Vec<FieldKind> =
                        entry.original.fields.iter().map(|f| f.kind).collect();
                    Message::decode(entry.original.step, &kinds, &app.data).ok()?
                } else {
                    return None;
                };
                let cfg = slot.isotp[role_index(origin.sender)];
                let mut last = completed_ns;
                if entry.frames > 1 {
                    last += flow_control_frame(&cfg).frame_time_ns(&self.timing);
                    last += cfg.st_min_us as SimNanos * 1_000 * (entry.frames - 1);
                }
                last += slot.overhead_ns[rx] * entry.frames;
                let at = slot.queues.push(receiver, last.div_ceil(1_000), message);
                slot.delivered += 1;
                Some(DeliveryDue {
                    slot: origin.slot,
                    to: receiver,
                    at_us: at,
                })
            }
        }
    }

    /// Delivers the earliest queued message for `(slot, to)` due by
    /// `now_us`.
    pub fn recv(&mut self, slot: usize, to: Role, now_us: TransportTime) -> Option<Message> {
        self.slots[slot].queues.pop_due(to, now_us)
    }

    /// The next virtual time (µs) at which the bus can make progress,
    /// or `None` when no frames are queued. Processing at this time is
    /// guaranteed to transmit at least one frame.
    pub fn next_activity_us(&self) -> Option<TransportTime> {
        let min_ready = self.pending.iter().map(|f| f.ready_ns).min()?;
        Some(min_ready.max(self.busy_until_ns).div_ceil(1_000))
    }

    /// Fault-engine totals. `messages_lost` is computed as
    /// sent-minus-delivered per slot, so it is only final once the bus
    /// has drained and all due deliveries were consumed.
    pub fn counters(&self) -> FaultCounters {
        let mut c = self.counters;
        for s in &self.slots {
            c.messages_lost += s.stats.messages.saturating_sub(s.delivered);
        }
        c
    }

    /// Per-slot traffic totals.
    pub fn slot_stats(&self, slot: usize) -> SlotStats {
        self.slots[slot].stats
    }

    /// The transmitted-frame schedule so far.
    pub fn frame_log(&self) -> &[FrameRecord] {
        &self.log
    }
}

fn pci_kind(frame: &CanFdFrame) -> &'static str {
    match frame.payload.first().map(|b| b >> 4) {
        Some(0x0) => "SF",
        Some(0x1) => "FF",
        Some(0x2) => "CF",
        _ => "RAW",
    }
}

fn fate_label(queued: &QueuedFrame) -> &'static str {
    match (&queued.origin, queued.fate) {
        (None, _) => "storm",
        (Some(o), _) if o.msg_key & REPLAY_BIT != 0 => "replay",
        (_, FrameFate::Deliver) => "ok",
        (_, FrameFate::Drop) => "drop",
        (_, FrameFate::Corrupt { .. }) => "corrupt",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{BabbleSpec, FaultSpec, TargetedFault};
    use ecq_proto::WireField;

    fn a1() -> Message {
        Message::new(
            "A1",
            vec![
                WireField::new(FieldKind::Id, vec![1; 16]),
                WireField::new(FieldKind::EphemeralPoint, vec![2; 64]),
            ],
        )
    }

    fn b1() -> Message {
        Message::new(
            "B1",
            vec![
                WireField::new(FieldKind::Id, vec![7; 16]),
                WireField::new(FieldKind::Cert, vec![8; 101]),
                WireField::new(FieldKind::EphemeralPoint, vec![9; 64]),
                WireField::new(FieldKind::Response, vec![10; 64]),
            ],
        )
    }

    fn drain(bus: &mut SharedBus) -> Vec<DeliveryDue> {
        let mut out = Vec::new();
        while let Some(at) = bus.next_activity_us() {
            out.extend(bus.process(at + 1));
        }
        out
    }

    #[test]
    fn fault_free_bus_delivers_typed_messages() {
        let mut bus = SharedBus::new(FaultPlan::inert());
        let s0 = bus.add_slot(0, [0, 0]);
        let s1 = bus.add_slot(1, [0, 0]);
        bus.send(s0, Role::Initiator, a1(), 0);
        bus.send(s1, Role::Responder, b1(), 0);
        let due = drain(&mut bus);
        assert_eq!(due.len(), 2);
        let m0 = bus.recv(s0, Role::Responder, due[0].at_us.max(due[1].at_us));
        let m1 = bus.recv(s1, Role::Initiator, due[0].at_us.max(due[1].at_us));
        assert_eq!(m0.unwrap(), a1());
        assert_eq!(m1.unwrap(), b1());
        assert_eq!(bus.counters(), FaultCounters::default());
        assert_eq!(bus.slot_stats(s0).frames, 2);
        assert_eq!(bus.slot_stats(s1).frames, 4);
    }

    #[test]
    fn lower_slot_wins_arbitration() {
        let mut bus = SharedBus::new(FaultPlan::inert());
        let s0 = bus.add_slot(0, [0, 0]);
        let s1 = bus.add_slot(1, [0, 0]);
        // Both ready at t=0; slot 0's id block is lower.
        bus.send(s1, Role::Initiator, a1(), 0);
        bus.send(s0, Role::Initiator, a1(), 0);
        drain(&mut bus);
        let first = &bus.frame_log()[0];
        assert_eq!(first.slot, Some(s0));
        // The two sessions' frames interleave by priority: every slot-0
        // frame precedes every slot-1 frame here (all ready at once).
        let slots: Vec<_> = bus.frame_log().iter().map(|r| r.slot).collect();
        assert_eq!(slots, vec![Some(0), Some(0), Some(1), Some(1)]);
    }

    #[test]
    fn targeted_cf_drop_loses_the_message_with_isotp_errors() {
        let spec = FaultSpec::targeted_only(
            TargetedFault {
                session: 0,
                sender: Role::Responder,
                message: 0,
                frame: 1, // CF #1 of the 4-frame B1
                action: FaultAction::Drop,
            },
            u64::MAX,
        );
        let mut bus = SharedBus::new(FaultPlan::new(spec, 0));
        let s0 = bus.add_slot(0, [0, 0]);
        bus.send(s0, Role::Responder, b1(), 0);
        let due = drain(&mut bus);
        assert!(due.is_empty(), "dropped CF must kill the message");
        let c = bus.counters();
        assert_eq!(c.dropped, 1);
        // CF2 arrives out of sequence, CF3 lands with no FF context.
        assert_eq!(c.isotp_errors, 2);
        assert_eq!(c.messages_lost, 1);
    }

    #[test]
    fn corrupted_pci_loses_the_message() {
        let spec = FaultSpec::targeted_only(
            TargetedFault {
                session: 0,
                sender: Role::Initiator,
                message: 0,
                frame: 0,
                action: FaultAction::Corrupt { offset: 0 },
            },
            u64::MAX,
        );
        let mut bus = SharedBus::new(FaultPlan::new(spec, 0));
        let s0 = bus.add_slot(0, [0, 0]);
        bus.send(s0, Role::Initiator, a1(), 0);
        let due = drain(&mut bus);
        assert!(due.is_empty());
        let c = bus.counters();
        assert_eq!(c.corrupted, 1);
        assert_eq!(c.messages_lost, 1);
    }

    #[test]
    fn corrupted_body_delivers_a_rebuilt_typed_message() {
        // Corrupt a payload byte of B1's last CF: reassembly succeeds,
        // the typed message is re-decoded from the damaged bytes, and
        // the receiver gets a B1 whose Resp field differs.
        let spec = FaultSpec::targeted_only(
            TargetedFault {
                session: 0,
                sender: Role::Responder,
                message: 0,
                frame: 3,
                action: FaultAction::Corrupt { offset: 10 },
            },
            u64::MAX,
        );
        let mut bus = SharedBus::new(FaultPlan::new(spec, 0));
        let s0 = bus.add_slot(0, [0, 0]);
        bus.send(s0, Role::Responder, b1(), 0);
        let due = drain(&mut bus);
        assert_eq!(due.len(), 1);
        let got = bus.recv(s0, Role::Initiator, due[0].at_us).unwrap();
        assert_eq!(got.step, "B1");
        assert_ne!(got, b1(), "corruption must reach the typed layer");
        assert_eq!(
            got.field(FieldKind::Id).unwrap(),
            b1().field(FieldKind::Id).unwrap()
        );
        assert_ne!(
            got.field(FieldKind::Response).unwrap(),
            b1().field(FieldKind::Response).unwrap()
        );
    }

    #[test]
    fn duplicated_cf_breaks_reassembly() {
        let spec = FaultSpec::targeted_only(
            TargetedFault {
                session: 0,
                sender: Role::Responder,
                message: 0,
                frame: 1,
                action: FaultAction::Duplicate,
            },
            u64::MAX,
        );
        let mut bus = SharedBus::new(FaultPlan::new(spec, 0));
        let s0 = bus.add_slot(0, [0, 0]);
        bus.send(s0, Role::Responder, b1(), 0);
        let due = drain(&mut bus);
        assert!(
            due.is_empty(),
            "repeated CF sequence number must reset reassembly"
        );
        let c = bus.counters();
        assert_eq!(c.duplicated, 1);
        assert!(c.isotp_errors >= 1);
        assert_eq!(c.messages_lost, 1);
    }

    #[test]
    fn replayed_message_is_delivered_twice() {
        let spec = FaultSpec::targeted_only(
            TargetedFault {
                session: 0,
                sender: Role::Initiator,
                message: 0,
                frame: 0,
                action: FaultAction::ReplayMessage {
                    delay_ns: 5_000_000,
                },
            },
            u64::MAX,
        );
        let mut bus = SharedBus::new(FaultPlan::new(spec, 0));
        let s0 = bus.add_slot(0, [0, 0]);
        bus.send(s0, Role::Initiator, a1(), 0);
        let due = drain(&mut bus);
        assert_eq!(due.len(), 2, "original + replayed copy");
        assert!(due[1].at_us >= due[0].at_us + 5_000);
        let first = bus.recv(s0, Role::Responder, due[0].at_us).unwrap();
        let second = bus.recv(s0, Role::Responder, due[1].at_us).unwrap();
        assert_eq!(first, a1());
        assert_eq!(second, a1());
        assert_eq!(bus.counters().replayed, 1);
    }

    #[test]
    fn babble_storm_occupies_the_bus_and_delays_traffic() {
        let mut quiet = SharedBus::new(FaultPlan::inert());
        let q0 = quiet.add_slot(0, [0, 0]);
        quiet.send(q0, Role::Responder, b1(), 0);
        let quiet_due = drain(&mut quiet);

        let spec = FaultSpec {
            babble: Some(BabbleSpec {
                id: 0x010,
                start_us: 0,
                end_us: 5_000,
                period_us: 300,
                payload_len: 64,
            }),
            ..FaultSpec::none()
        };
        let mut stormy = SharedBus::new(FaultPlan::new(spec, 0));
        let s0 = stormy.add_slot(0, [0, 0]);
        stormy.send(s0, Role::Responder, b1(), 0);
        let stormy_due = drain(&mut stormy);

        assert_eq!(quiet_due.len(), 1);
        assert_eq!(stormy_due.len(), 1);
        assert!(
            stormy_due[0].at_us > quiet_due[0].at_us,
            "storm must delay delivery: {} vs {}",
            stormy_due[0].at_us,
            quiet_due[0].at_us
        );
        assert!(stormy.counters().storm_frames > 0);
    }

    #[test]
    fn schedule_is_deterministic() {
        let run = || {
            let spec = FaultSpec {
                seed: 77,
                drop_per_mille: 120,
                corrupt_per_mille: 80,
                duplicate_per_mille: 60,
                reorder_per_mille: 60,
                ..FaultSpec::none()
            };
            let mut bus = SharedBus::new(FaultPlan::new(spec, 4));
            let s0 = bus.add_slot(0, [100, 200]);
            let s1 = bus.add_slot(1, [100, 200]);
            bus.send(s0, Role::Initiator, a1(), 0);
            bus.send(s1, Role::Responder, b1(), 10);
            bus.send(s0, Role::Responder, b1(), 500);
            let due = drain(&mut bus);
            (due, bus.frame_log().to_vec(), bus.counters())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn interleaved_processing_matches_one_shot() {
        // Processing in many small time steps must produce the same
        // schedule as draining in one call — the property the fleet
        // scheduler's incremental pumping relies on.
        let spec = FaultSpec {
            seed: 3,
            drop_per_mille: 100,
            ..FaultSpec::none()
        };
        let build = || {
            let mut bus = SharedBus::new(FaultPlan::new(spec, 1));
            let s0 = bus.add_slot(0, [0, 0]);
            let s1 = bus.add_slot(1, [0, 0]);
            bus.send(s0, Role::Initiator, a1(), 0);
            bus.send(s1, Role::Responder, b1(), 0);
            bus
        };
        let mut one_shot = build();
        let mut all = one_shot.process(1_000_000);
        let mut stepped = build();
        let mut acc = Vec::new();
        for t in (0..=1_000_000).step_by(137) {
            acc.extend(stepped.process(t));
        }
        acc.extend(stepped.process(1_000_000));
        all.sort_by_key(|d| (d.at_us, d.slot));
        acc.sort_by_key(|d| (d.at_us, d.slot));
        assert_eq!(all, acc);
        assert_eq!(one_shot.frame_log(), stepped.frame_log());
    }
}
