//! CAN-FD frames and bit-level timing.
//!
//! CAN-FD transmits the arbitration/control phase at the *nominal* bit
//! rate and switches to the *data* bit rate for the payload and CRC
//! (the paper configures 0.5 Mbit/s and 2 Mbit/s respectively). The
//! frame-time model here counts the protocol fields of ISO 11898-1 and
//! applies a conservative stuffing estimate; it is an approximation,
//! but at 3.2-second handshakes a ±10 % error on a 0.3 ms frame is
//! irrelevant (which is the paper's own point about transfer time).

use crate::SimNanos;

/// Valid CAN-FD payload sizes.
pub const DLC_SIZES: [usize; 16] = [0, 1, 2, 3, 4, 5, 6, 7, 8, 12, 16, 20, 24, 32, 48, 64];

/// Maximum CAN-FD payload per frame.
pub const MAX_PAYLOAD: usize = 64;

/// Returns the smallest valid DLC payload size ≥ `len`.
///
/// # Panics
///
/// Panics when `len > 64` (callers segment via ISO-TP first).
pub fn padded_len(len: usize) -> usize {
    assert!(len <= MAX_PAYLOAD, "CAN-FD payload exceeds 64 bytes");
    *DLC_SIZES
        .iter()
        .find(|&&cap| cap >= len)
        .expect("len <= 64 always maps")
}

/// Returns the 4-bit DLC code for a padded payload size.
///
/// # Panics
///
/// Panics when `padded` is not a valid CAN-FD payload size.
pub fn dlc_code(padded: usize) -> u8 {
    DLC_SIZES
        .iter()
        .position(|&cap| cap == padded)
        .expect("padded size must be a DLC size") as u8
}

/// Bit-rate configuration of the bus.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BitTiming {
    /// Arbitration/control phase bit rate (bit/s).
    pub nominal_bps: f64,
    /// Data phase bit rate (bit/s).
    pub data_bps: f64,
}

impl Default for BitTiming {
    /// The paper's prototype configuration: 0.5 Mbit/s / 2 Mbit/s.
    fn default() -> Self {
        BitTiming {
            nominal_bps: 500_000.0,
            data_bps: 2_000_000.0,
        }
    }
}

/// A CAN-FD data frame (11-bit base identifier).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CanFdFrame {
    /// The 11-bit arbitration identifier (lower wins arbitration).
    pub id: u16,
    /// Payload, padded to a valid DLC size on construction.
    pub payload: Vec<u8>,
    /// Number of meaningful payload bytes (≤ `payload.len()`).
    pub used_len: usize,
}

impl CanFdFrame {
    /// Builds a frame, padding the payload to the next DLC size.
    ///
    /// # Panics
    ///
    /// Panics when `id` exceeds 11 bits or the payload exceeds 64
    /// bytes.
    pub fn new(id: u16, data: &[u8]) -> Self {
        assert!(id < 0x800, "11-bit identifier required");
        let padded = padded_len(data.len());
        let mut payload = data.to_vec();
        payload.resize(padded, 0x00); // ISO-TP pads with 0x00 here
        CanFdFrame {
            id,
            payload,
            used_len: data.len(),
        }
    }

    /// Flips bits of one meaningful payload byte (XOR `0xA5`), the
    /// fault-injection model of a corrupted-on-the-wire frame that
    /// still passes the receiving controller's CRC. `offset` is reduced
    /// modulo [`CanFdFrame::used_len`]; a no-op on empty frames.
    pub fn corrupt_byte(&mut self, offset: usize) {
        if self.used_len > 0 {
            self.payload[offset % self.used_len] ^= 0xA5;
        }
    }

    /// Transmission time of this frame under `timing`.
    ///
    /// Field accounting (ISO 11898-1, base format, BRS set):
    ///
    /// * nominal phase: SOF(1) + ID(11) + RRS/IDE/FDF/res(4) +
    ///   BRS(1) ≈ 18 bits, plus ACK+DEL(2) + EOF(7) + IFS(3) = 12
    ///   trailing bits;
    /// * data phase: ESI(1) + DLC(4) + payload·8 + stuff-count(4) +
    ///   CRC(17 for ≤16 B payload, 21 above) + CRC-delimiter(1);
    /// * stuffing: +10 % on the stuffable nominal header and data
    ///   fields (worst case is +20 %; typical traffic sees less).
    pub fn frame_time_ns(&self, timing: &BitTiming) -> SimNanos {
        let crc_bits = if self.payload.len() <= 16 { 17.0 } else { 21.0 };
        let header_nominal_bits = 18.0 * 1.10;
        let trailer_nominal_bits = 12.0; // fixed-form, no stuffing
        let data_bits = (1.0 + 4.0 + 8.0 * self.payload.len() as f64 + 4.0 + crc_bits + 1.0) * 1.10;
        let seconds = (header_nominal_bits + trailer_nominal_bits) / timing.nominal_bps
            + data_bits / timing.data_bps;
        (seconds * 1e9).round() as SimNanos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dlc_mapping() {
        assert_eq!(padded_len(0), 0);
        assert_eq!(padded_len(7), 7);
        assert_eq!(padded_len(9), 12);
        assert_eq!(padded_len(13), 16);
        assert_eq!(padded_len(33), 48);
        assert_eq!(padded_len(64), 64);
        assert_eq!(dlc_code(64), 15);
        assert_eq!(dlc_code(8), 8);
        assert_eq!(dlc_code(12), 9);
    }

    #[test]
    #[should_panic(expected = "exceeds 64")]
    fn oversize_payload_panics() {
        padded_len(65);
    }

    #[test]
    fn frame_pads_payload() {
        let f = CanFdFrame::new(0x123, &[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(f.payload.len(), 12);
        assert_eq!(f.used_len, 9);
        assert_eq!(&f.payload[9..], &[0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "11-bit")]
    fn oversize_id_panics() {
        CanFdFrame::new(0x800, &[]);
    }

    #[test]
    fn full_frame_under_half_millisecond() {
        // 64-byte frame at 0.5/2 Mbit/s: ~60 µs nominal + ~300 µs data.
        let f = CanFdFrame::new(0x100, &[0xAA; 64]);
        let t = f.frame_time_ns(&BitTiming::default());
        assert!(t > 200_000, "implausibly fast: {t} ns");
        assert!(t < 500_000, "implausibly slow: {t} ns");
    }

    #[test]
    fn faster_data_rate_shortens_frames() {
        let f = CanFdFrame::new(0x100, &[0xAA; 64]);
        let slow = f.frame_time_ns(&BitTiming {
            nominal_bps: 500_000.0,
            data_bps: 1_000_000.0,
        });
        let fast = f.frame_time_ns(&BitTiming {
            nominal_bps: 500_000.0,
            data_bps: 8_000_000.0,
        });
        assert!(fast < slow);
    }

    #[test]
    fn bigger_payload_takes_longer() {
        let small = CanFdFrame::new(0x1, &[0; 8]).frame_time_ns(&BitTiming::default());
        let large = CanFdFrame::new(0x1, &[0; 64]).frame_time_ns(&BitTiming::default());
        assert!(large > small);
    }
}
