//! CAN-FD network simulation with ISO 15765-2 transport.
//!
//! The paper's prototype (§V-C) runs the session protocols between two
//! S32K144 ECUs over CAN-FD (0.5 Mbit/s nominal phase, 2 Mbit/s data
//! phase) with a CAN-TP (ISO 15765-2) layer for fragmentation — Fig. 6
//! shows the stack. This crate is that substrate:
//!
//! * [`canfd`] — CAN-FD frames, DLC mapping and a bit-level frame-time
//!   model with dual bit rates,
//! * [`isotp`] — ISO 15765-2 segmentation (SF/FF/CF/FC), reassembly and
//!   transfer-time accounting,
//! * [`app`] — the application/session header of the paper's Fig. 6
//!   (communication code, session communication id, op code),
//! * [`bus`] — a discrete-event bus serializing transmissions with
//!   priority arbitration,
//! * [`transport`] — the `ecq_proto` [`transport::CanLink`] transport:
//!   handshake messages wrapped in the app header, segmented by ISO-TP
//!   and routed frame-by-frame through the bus, with per-link latency
//!   from the `ecq_devices` cost tables,
//! * [`fault`] — the seeded, schedule-stable fault-injection plan
//!   (frame drop/corrupt/duplicate/reorder/delay, message replay,
//!   babble storms, clock skew),
//! * [`sharedbus`] — a multi-session arbitrated bus processed
//!   incrementally under a [`fault::FaultPlan`], with typed-message
//!   reconstruction and a pinned frame-schedule log.
//!
//! The headline check reproduced by the tests and the Fig. 7 bench: a
//! full handshake message (≤ 245 B) crosses the bus in ~1 ms — "the
//! CAN-FD transfer time over the physical link was negligible (<1 ms)".

#![warn(missing_docs)]

pub mod app;
pub mod bus;
pub mod canfd;
pub mod fault;
pub mod isotp;
pub mod sharedbus;
pub mod transport;

pub use fault::{BabbleSpec, FaultAction, FaultPlan, FaultSpec, TargetedFault};
pub use sharedbus::{DeliveryDue, FaultCounters, FrameRecord, SharedBus};
pub use transport::CanLink;

/// Simulation time in nanoseconds.
pub type SimNanos = u64;

/// Converts nanoseconds to milliseconds (reporting convenience).
pub fn ns_to_ms(ns: SimNanos) -> f64 {
    ns as f64 / 1.0e6
}

/// Converts a float millisecond duration to nanoseconds.
pub fn ms_to_ns(ms: f64) -> SimNanos {
    (ms * 1.0e6).round() as SimNanos
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_conversions_roundtrip() {
        assert_eq!(ns_to_ms(1_500_000), 1.5);
        assert_eq!(ms_to_ns(1.5), 1_500_000);
        assert_eq!(ms_to_ns(ns_to_ms(123_456_789)), 123_456_789);
    }
}
