//! Deterministic fault injection for the shared CAN-FD bus.
//!
//! A [`FaultSpec`] describes *what* an adversarial (or merely lossy)
//! bus does — random per-mille rates for frame drop / corruption /
//! duplication / reordering / delay, surgically targeted faults on
//! specific frames of specific handshake messages, an arbitration
//! storm from a babbling low-ID node, and per-role clock skew. A
//! [`FaultPlan`] turns the spec into *decisions*: every random choice
//! is a pure function of `(spec.seed, bus id, frame/message sequence
//! number)` via a splitmix64 hash, so the schedule of faults is stable
//! across runs, thread counts and shard layouts — the whole
//! fault-injected sweep stays bit-reproducible from `(config, seed)`.

use ecq_proto::Role;

/// One surgically targeted fault: applied to the `frame`-th CAN-FD
/// frame of the `message`-th ISO-TP message sent by `sender` on bus
/// slot `session`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TargetedFault {
    /// Bus slot (session position on the shared bus) to attack.
    pub session: usize,
    /// Which endpoint's transmissions to attack.
    pub sender: Role,
    /// Zero-based index of the message within that direction
    /// (initiator: 0 = A1, 1 = A2; responder: 0 = B1, 1 = B2).
    pub message: usize,
    /// Zero-based frame index within the message's ISO-TP segmentation
    /// (0 = SF/FF, 1.. = CFs). Ignored by message-level actions
    /// ([`FaultAction::ReplayMessage`]).
    pub frame: usize,
    /// What happens to the selected frame (or message).
    pub action: FaultAction,
}

/// The effect of a targeted fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// The frame occupies the bus but the receiver discards it
    /// (models a CRC error on the receiving controller).
    Drop,
    /// XOR a payload byte (index reduced modulo the frame's used
    /// length) so the receiver reassembles corrupted content.
    Corrupt {
        /// Byte offset into the frame payload (0 hits the ISO-TP PCI).
        offset: usize,
    },
    /// Retransmit the frame immediately after the original.
    Duplicate,
    /// Defer the frame's readiness by `ns` nanoseconds so later frames
    /// of the same message overtake it (a reordering attack).
    HoldBack {
        /// How long the frame is held back.
        ns: u64,
    },
    /// Replay the *entire message* (all its frames) `delay_ns` after
    /// the original transmission — the classic captured-first-flight
    /// replay.
    ReplayMessage {
        /// Delay between the original frames and the replayed copy.
        delay_ns: u64,
    },
}

/// A babbling-idiot node: periodically transmits frames on a low
/// arbitration ID, preempting legitimate traffic for the window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BabbleSpec {
    /// Arbitration ID of the babbler (low = wins arbitration).
    pub id: u16,
    /// Window start, virtual microseconds.
    pub start_us: u64,
    /// Window end, virtual microseconds.
    pub end_us: u64,
    /// Period between babble frames, microseconds.
    pub period_us: u64,
    /// Payload length of each babble frame (≤ 64).
    pub payload_len: usize,
}

/// A complete, declarative fault schedule for one shared bus.
///
/// `..FaultSpec::none()` is the idiom for building a spec with a few
/// fields set; the default injects nothing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// Seed for all random fault decisions (independent of the fleet
    /// seed so the same traffic can be replayed under different fault
    /// schedules).
    pub seed: u64,
    /// Per-mille probability that a data frame is dropped (transmitted
    /// but discarded by the receiver).
    pub drop_per_mille: u16,
    /// Per-mille probability that a data frame has one payload byte
    /// corrupted.
    pub corrupt_per_mille: u16,
    /// Per-mille probability that a data frame is duplicated.
    pub duplicate_per_mille: u16,
    /// Per-mille probability that a data frame is held back by
    /// [`FaultSpec::reorder_hold_ns`] (reordering it behind its
    /// successors).
    pub reorder_per_mille: u16,
    /// Per-mille probability that a whole message is delayed by
    /// [`FaultSpec::delay_ns`] (all frames shifted together — pure
    /// latency, no reordering).
    pub delay_per_mille: u16,
    /// Message-level delay applied when the delay dice hits.
    pub delay_ns: u64,
    /// Frame hold-back applied when the reorder dice hits (default two
    /// full frame times, enough for a successor CF to overtake).
    pub reorder_hold_ns: u64,
    /// Sender-side clock skew in parts-per-million per role
    /// (`[initiator, responder]`): a skewed endpoint's frames reach
    /// the bus `now · ppm / 10⁶` late.
    pub skew_ppm: [u32; 2],
    /// Optional arbitration storm.
    pub babble: Option<BabbleSpec>,
    /// Up to four surgically targeted faults.
    pub targeted: [Option<TargetedFault>; 4],
    /// Virtual-time deadline (µs) after which unfinished sessions fail
    /// closed with `ProtocolError::Timeout`. `u64::MAX` disables it.
    pub deadline_us: u64,
}

impl FaultSpec {
    /// A spec that injects nothing: the shared bus behaves as a
    /// fault-free medium (arbitration and occupancy still apply).
    pub const fn none() -> Self {
        FaultSpec {
            seed: 0,
            drop_per_mille: 0,
            corrupt_per_mille: 0,
            duplicate_per_mille: 0,
            reorder_per_mille: 0,
            delay_per_mille: 0,
            delay_ns: 0,
            reorder_hold_ns: 800_000,
            skew_ppm: [0, 0],
            babble: None,
            targeted: [None; 4],
            deadline_us: u64::MAX,
        }
    }

    /// Whether any fault class is active.
    pub fn is_active(&self) -> bool {
        *self
            != FaultSpec {
                seed: self.seed,
                deadline_us: self.deadline_us,
                ..FaultSpec::none()
            }
    }

    /// A spec with one targeted fault and nothing random.
    pub const fn targeted_only(fault: TargetedFault, deadline_us: u64) -> Self {
        let mut spec = FaultSpec::none();
        spec.targeted[0] = Some(fault);
        spec.deadline_us = deadline_us;
        spec
    }
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec::none()
    }
}

/// The receiver-side fate of one transmitted frame, decided at submit
/// time by the [`FaultPlan`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameFate {
    /// Delivered intact.
    Deliver,
    /// Transmitted but discarded by the receiver (CRC-error model).
    Drop,
    /// Delivered with one payload byte XORed.
    Corrupt {
        /// Byte offset into the frame payload, reduced modulo the
        /// frame's used length at application time.
        offset: usize,
    },
}

/// Random-decision classes, hashed separately so the dice are
/// independent per class.
const CLASS_DROP: u64 = 1;
const CLASS_CORRUPT: u64 = 2;
const CLASS_DUPLICATE: u64 = 3;
const CLASS_REORDER: u64 = 4;
const CLASS_DELAY: u64 = 5;
const CLASS_OFFSET: u64 = 6;

/// sebastiano vigna's splitmix64 — a tiny, high-quality, dependency-free
/// mixer; every fault decision is one evaluation of it.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A [`FaultSpec`] bound to one bus: answers per-frame and per-message
/// fault queries as pure functions of the spec seed, the bus id and
/// the stable sequence numbers the bus assigns.
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    spec: FaultSpec,
    stream: u64,
}

impl FaultPlan {
    /// Binds `spec` to bus `bus_id` (distinct buses draw independent
    /// decision streams from the same spec seed).
    pub fn new(spec: FaultSpec, bus_id: u64) -> Self {
        FaultPlan {
            spec,
            stream: splitmix64(spec.seed ^ bus_id.wrapping_mul(0xA24B_AED4_963E_E407)),
        }
    }

    /// A plan that injects nothing.
    pub fn inert() -> Self {
        FaultPlan::new(FaultSpec::none(), 0)
    }

    /// The bound spec.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    fn dice(&self, seq: u64, class: u64) -> u64 {
        splitmix64(
            self.stream
                ^ seq.wrapping_mul(0x9FB2_1C65_1E98_DF25)
                ^ class.wrapping_mul(0xD1B5_4A32_D192_ED03),
        )
    }

    fn hits(&self, seq: u64, class: u64, per_mille: u16) -> bool {
        per_mille > 0 && self.dice(seq, class) % 1000 < u64::from(per_mille)
    }

    /// Receiver-side fate of the frame with bus submit sequence `seq`
    /// (drop wins over corrupt when both dice hit).
    pub fn frame_fate(&self, seq: u64) -> FrameFate {
        if self.hits(seq, CLASS_DROP, self.spec.drop_per_mille) {
            FrameFate::Drop
        } else if self.hits(seq, CLASS_CORRUPT, self.spec.corrupt_per_mille) {
            FrameFate::Corrupt {
                offset: (self.dice(seq, CLASS_OFFSET) % 64) as usize,
            }
        } else {
            FrameFate::Deliver
        }
    }

    /// Whether the frame with submit sequence `seq` is retransmitted.
    pub fn duplicates(&self, seq: u64) -> bool {
        self.hits(seq, CLASS_DUPLICATE, self.spec.duplicate_per_mille)
    }

    /// Extra readiness delay for the frame with submit sequence `seq`
    /// (the random reordering class).
    pub fn hold_back_ns(&self, seq: u64) -> u64 {
        if self.hits(seq, CLASS_REORDER, self.spec.reorder_per_mille) {
            self.spec.reorder_hold_ns
        } else {
            0
        }
    }

    /// Message-level delay for the `msg_seq`-th message on the bus
    /// (all frames shifted together).
    pub fn message_delay_ns(&self, msg_seq: u64) -> u64 {
        if self.hits(msg_seq, CLASS_DELAY, self.spec.delay_per_mille) {
            self.spec.delay_ns
        } else {
            0
        }
    }

    /// Sender-side clock-skew lateness at sender-local time `now_ns`.
    pub fn skew_delay_ns(&self, sender: Role, now_ns: u64) -> u64 {
        let ppm = match sender {
            Role::Initiator => self.spec.skew_ppm[0],
            Role::Responder => self.spec.skew_ppm[1],
        };
        ((u128::from(now_ns) * u128::from(ppm)) / 1_000_000) as u64
    }

    /// The targeted *frame-level* fault for `(slot, sender, message,
    /// frame)`, if any ([`FaultAction::ReplayMessage`] entries are
    /// message-level and excluded — see [`FaultPlan::replay_delay_ns`]).
    pub fn targeted(
        &self,
        slot: usize,
        sender: Role,
        message: usize,
        frame: usize,
    ) -> Option<FaultAction> {
        self.spec.targeted.iter().flatten().find_map(|t| {
            let frame_level = !matches!(t.action, FaultAction::ReplayMessage { .. });
            (frame_level
                && t.session == slot
                && t.sender == sender
                && t.message == message
                && t.frame == frame)
                .then_some(t.action)
        })
    }

    /// Whether `(slot, sender, message)` is replayed, and after how
    /// long.
    pub fn replay_delay_ns(&self, slot: usize, sender: Role, message: usize) -> Option<u64> {
        self.spec
            .targeted
            .iter()
            .flatten()
            .find_map(|t| match t.action {
                FaultAction::ReplayMessage { delay_ns }
                    if t.session == slot && t.sender == sender && t.message == message =>
                {
                    Some(delay_ns)
                }
                _ => None,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_schedule_stable() {
        let spec = FaultSpec {
            seed: 42,
            drop_per_mille: 100,
            corrupt_per_mille: 100,
            duplicate_per_mille: 100,
            reorder_per_mille: 100,
            ..FaultSpec::none()
        };
        let a = FaultPlan::new(spec, 3);
        let b = FaultPlan::new(spec, 3);
        for seq in 0..500 {
            assert_eq!(a.frame_fate(seq), b.frame_fate(seq));
            assert_eq!(a.duplicates(seq), b.duplicates(seq));
            assert_eq!(a.hold_back_ns(seq), b.hold_back_ns(seq));
        }
    }

    #[test]
    fn buses_draw_independent_streams() {
        let spec = FaultSpec {
            seed: 7,
            drop_per_mille: 500,
            ..FaultSpec::none()
        };
        let a = FaultPlan::new(spec, 0);
        let b = FaultPlan::new(spec, 1);
        let same = (0..200)
            .filter(|&s| a.frame_fate(s) == b.frame_fate(s))
            .count();
        assert!(same < 200, "bus id must decorrelate the fault streams");
    }

    #[test]
    fn rates_are_roughly_honored() {
        let spec = FaultSpec {
            seed: 9,
            drop_per_mille: 250,
            ..FaultSpec::none()
        };
        let plan = FaultPlan::new(spec, 0);
        let drops = (0..4000)
            .filter(|&s| plan.frame_fate(s) == FrameFate::Drop)
            .count();
        // 250‰ of 4000 = 1000 expected; accept a generous band.
        assert!((700..1300).contains(&drops), "{drops} drops of 4000");
    }

    #[test]
    fn inert_plan_injects_nothing() {
        let plan = FaultPlan::inert();
        assert!(!plan.spec().is_active());
        for seq in 0..100 {
            assert_eq!(plan.frame_fate(seq), FrameFate::Deliver);
            assert!(!plan.duplicates(seq));
            assert_eq!(plan.hold_back_ns(seq), 0);
            assert_eq!(plan.message_delay_ns(seq), 0);
        }
        assert_eq!(plan.skew_delay_ns(Role::Initiator, 1_000_000_000), 0);
    }

    #[test]
    fn targeted_lookup_distinguishes_frame_and_message_level() {
        let spec = FaultSpec::targeted_only(
            TargetedFault {
                session: 0,
                sender: Role::Responder,
                message: 0,
                frame: 2,
                action: FaultAction::Drop,
            },
            30_000_000,
        );
        let plan = FaultPlan::new(spec, 0);
        assert_eq!(
            plan.targeted(0, Role::Responder, 0, 2),
            Some(FaultAction::Drop)
        );
        assert_eq!(plan.targeted(0, Role::Responder, 0, 1), None);
        assert_eq!(plan.targeted(1, Role::Responder, 0, 2), None);
        assert_eq!(plan.replay_delay_ns(0, Role::Responder, 0), None);

        let spec = FaultSpec::targeted_only(
            TargetedFault {
                session: 1,
                sender: Role::Initiator,
                message: 0,
                frame: 0,
                action: FaultAction::ReplayMessage { delay_ns: 5_000 },
            },
            30_000_000,
        );
        let plan = FaultPlan::new(spec, 0);
        assert_eq!(plan.targeted(1, Role::Initiator, 0, 0), None);
        assert_eq!(plan.replay_delay_ns(1, Role::Initiator, 0), Some(5_000));
    }

    #[test]
    fn skew_scales_with_time() {
        let spec = FaultSpec {
            skew_ppm: [0, 50_000],
            ..FaultSpec::none()
        };
        let plan = FaultPlan::new(spec, 0);
        assert_eq!(plan.skew_delay_ns(Role::Initiator, 1_000_000), 0);
        assert_eq!(plan.skew_delay_ns(Role::Responder, 1_000_000), 50_000);
        assert_eq!(plan.skew_delay_ns(Role::Responder, 2_000_000), 100_000);
    }
}
