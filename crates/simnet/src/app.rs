//! The application/session layer header of the paper's Fig. 6.
//!
//! Above CAN-TP, the prototype frames every payload with a session
//! header: a communication code, a session communication identifier
//! and an operation code. Key-derivation handshake payloads and
//! encrypted application data both travel inside this envelope.

/// Operation codes for the session layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpCode {
    /// Key-derivation handshake payload.
    KeyDerivation,
    /// Encrypted application data.
    AppData,
    /// Session acknowledgement/control.
    Control,
}

impl OpCode {
    /// Wire encoding.
    pub fn to_byte(self) -> u8 {
        match self {
            OpCode::KeyDerivation => 0x10,
            OpCode::AppData => 0x20,
            OpCode::Control => 0x30,
        }
    }

    /// Wire decoding.
    pub fn from_byte(b: u8) -> Option<Self> {
        match b {
            0x10 => Some(OpCode::KeyDerivation),
            0x20 => Some(OpCode::AppData),
            0x30 => Some(OpCode::Control),
            _ => None,
        }
    }
}

/// Length of the session header in bytes
/// (comm code 1 + session id 2 + op code 1).
pub const HEADER_LEN: usize = 4;

/// A session-layer message (Fig. 6's "Application" row).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AppMessage {
    /// Communication code (message class within the deployment).
    pub comm_code: u8,
    /// Session communication identifier.
    pub session_id: u16,
    /// Operation code.
    pub op_code: OpCode,
    /// Payload (handshake message or encrypted app data).
    pub data: Vec<u8>,
}

impl AppMessage {
    /// Wraps a key-derivation handshake payload.
    pub fn handshake(session_id: u16, data: Vec<u8>) -> Self {
        AppMessage {
            comm_code: 0x01,
            session_id,
            op_code: OpCode::KeyDerivation,
            data,
        }
    }

    /// Serializes to header ‖ payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.data.len());
        out.push(self.comm_code);
        out.extend_from_slice(&self.session_id.to_be_bytes());
        out.push(self.op_code.to_byte());
        out.extend_from_slice(&self.data);
        out
    }

    /// Parses header ‖ payload.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < HEADER_LEN {
            return None;
        }
        Some(AppMessage {
            comm_code: bytes[0],
            session_id: u16::from_be_bytes([bytes[1], bytes[2]]),
            op_code: OpCode::from_byte(bytes[3])?,
            data: bytes[HEADER_LEN..].to_vec(),
        })
    }

    /// Total encoded length.
    pub fn wire_len(&self) -> usize {
        HEADER_LEN + self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let m = AppMessage::handshake(0x1234, vec![1, 2, 3]);
        let decoded = AppMessage::decode(&m.encode()).unwrap();
        assert_eq!(decoded, m);
        assert_eq!(m.wire_len(), 7);
    }

    #[test]
    fn rejects_short_and_bad_opcode() {
        assert!(AppMessage::decode(&[1, 2, 3]).is_none());
        assert!(AppMessage::decode(&[1, 0, 0, 0xFF, 9]).is_none());
    }

    #[test]
    fn opcode_byte_roundtrip() {
        for op in [OpCode::KeyDerivation, OpCode::AppData, OpCode::Control] {
            assert_eq!(OpCode::from_byte(op.to_byte()), Some(op));
        }
    }
}
