//! Property-based tests of the network substrate: ISO-TP segmentation
//! roundtrips over arbitrary payloads, DLC mapping laws, frame-time
//! monotonicity and app-header roundtrips.

use ecq_simnet::app::AppMessage;
use ecq_simnet::canfd::{padded_len, BitTiming, CanFdFrame, DLC_SIZES};
use ecq_simnet::isotp::{segment, transfer_time_ns, IsoTpConfig, Reassembler};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn isotp_roundtrips_any_payload(payload in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let config = IsoTpConfig::default();
        let frames = segment(&payload, &config).unwrap();
        let mut r = Reassembler::new();
        let mut out = None;
        for f in &frames {
            out = r.accept(f).unwrap();
        }
        prop_assert_eq!(out.expect("complete"), payload.clone());
        prop_assert!(!r.in_progress());
    }

    #[test]
    fn isotp_frame_count_formula(len in 0usize..2048) {
        let config = IsoTpConfig::default();
        let frames = segment(&vec![0u8; len], &config).unwrap();
        let expect = if len <= 62 {
            1
        } else {
            1 + (len - 62).div_ceil(63)
        };
        prop_assert_eq!(frames.len(), expect);
    }

    #[test]
    fn dlc_padding_is_minimal_and_valid(len in 0usize..=64) {
        let padded = padded_len(len);
        prop_assert!(padded >= len);
        prop_assert!(DLC_SIZES.contains(&padded));
        // Minimality: no smaller DLC size fits.
        for &cap in DLC_SIZES.iter() {
            if cap >= len {
                prop_assert!(padded <= cap);
                break;
            }
        }
    }

    #[test]
    fn frame_time_monotone_in_payload(a in 0usize..=64, b in 0usize..=64) {
        let timing = BitTiming::default();
        let ta = CanFdFrame::new(1, &vec![0u8; a]).frame_time_ns(&timing);
        let tb = CanFdFrame::new(1, &vec![0u8; b]).frame_time_ns(&timing);
        if padded_len(a) <= padded_len(b) {
            prop_assert!(ta <= tb);
        }
    }

    #[test]
    fn transfer_time_monotone_in_length(len in 1usize..2000) {
        let timing = BitTiming::default();
        let cfg = IsoTpConfig::default();
        prop_assert!(
            transfer_time_ns(len, &timing, &cfg) <= transfer_time_ns(len + 64, &timing, &cfg)
        );
    }

    #[test]
    fn app_header_roundtrips(comm in any::<u8>(), session in any::<u16>(),
                             data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let msg = AppMessage {
            comm_code: comm,
            session_id: session,
            op_code: ecq_simnet::app::OpCode::KeyDerivation,
            data,
        };
        prop_assert_eq!(AppMessage::decode(&msg.encode()).unwrap(), msg);
    }

    #[test]
    fn reassembler_rejects_frame_loss(payload in proptest::collection::vec(any::<u8>(), 200..800),
                                      drop_idx in 1usize..4) {
        let config = IsoTpConfig::default();
        let frames = segment(&payload, &config).unwrap();
        prop_assume!(drop_idx < frames.len() - 1);
        let mut r = Reassembler::new();
        let mut failed = false;
        for (i, f) in frames.iter().enumerate() {
            if i == drop_idx {
                continue; // lost frame
            }
            match r.accept(f) {
                Err(_) => {
                    failed = true;
                    break;
                }
                Ok(Some(msg)) => {
                    // If it completes despite a loss, the data must NOT
                    // silently equal the original.
                    prop_assert_ne!(msg, payload.clone());
                }
                Ok(None) => {}
            }
        }
        prop_assert!(failed, "a dropped CF must be detected as a sequence error");
    }
}
