//! Equivalence of the three ways to drive an STS handshake:
//!
//! 1. the classic run-to-completion callback loop (`start` /
//!    `on_message`, the pre-transport driver),
//! 2. the poll-style [`Endpoint::step`] state machine fed through a
//!    virtual-time [`ChannelTransport`],
//! 3. the [`run_handshake`] convenience driver.
//!
//! All three must produce byte-identical transcripts and the same
//! session key for identically seeded endpoints — the message-granular
//! scheduler path changes *when* messages move, never *what* they say.

use ecq_cert::ca::CertificateAuthority;
use ecq_cert::DeviceId;
use ecq_crypto::HmacDrbg;
use ecq_proto::transport::{ChannelTransport, Transport};
use ecq_proto::{run_handshake, Credentials, Endpoint, Role, SessionKey, StepOutput};
use ecq_sts::{StsConfig, StsInitiator, StsResponder, StsVariant};

fn endpoints(seed: u64, variant: StsVariant) -> (StsInitiator, StsResponder) {
    let mut rng = HmacDrbg::from_seed(seed);
    let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
    let a = Credentials::provision(&ca, DeviceId::from_label("alice"), 0, 1000, &mut rng).unwrap();
    let b = Credentials::provision(&ca, DeviceId::from_label("bob"), 0, 1000, &mut rng).unwrap();
    let config = StsConfig { now: 0, variant };
    let mut rng_a = HmacDrbg::new(&rng.bytes32(), b"sts-initiator");
    let mut rng_b = HmacDrbg::new(&rng.bytes32(), b"sts-responder");
    (
        StsInitiator::new(a, config, &mut rng_a),
        StsResponder::new(b, config, &mut rng_b),
    )
}

/// The pre-transport driver, verbatim: alternate `start`/`on_message`
/// until a side stops replying. Returns the raw bytes of each message.
fn drive_callbacks(alice: &mut StsInitiator, bob: &mut StsResponder) -> (Vec<Vec<u8>>, SessionKey) {
    let mut wire = Vec::new();
    let mut pending = alice.start().unwrap();
    let mut sender = Role::Initiator;
    while let Some(msg) = pending {
        wire.push(msg.encode());
        pending = match sender {
            Role::Initiator => bob.on_message(&msg).unwrap(),
            Role::Responder => alice.on_message(&msg).unwrap(),
        };
        sender = sender.peer();
    }
    assert!(alice.is_established() && bob.is_established());
    (wire, alice.session_key().unwrap())
}

/// The message-granularity driver: `step` outputs go through a
/// latency-bearing transport, and each delivery is consumed at its own
/// virtual timestamp.
fn drive_transport(
    alice: &mut StsInitiator,
    bob: &mut StsResponder,
    latency_us: u64,
) -> (Vec<Vec<u8>>, SessionKey, u64) {
    let mut link = ChannelTransport::new(latency_us);
    let mut wire = Vec::new();
    let mut now = 0u64;

    let StepOutput::Send(a1) = alice.step(None).unwrap() else {
        panic!("initiator must open");
    };
    wire.push(a1.encode());
    link.send_frame(Role::Initiator, a1, now).unwrap();

    let mut to = Role::Responder;
    while let Some(at) = link.next_delivery(to) {
        now = at;
        let msg = link.recv_frame(to, now, now).unwrap().unwrap();
        match (if to == Role::Responder {
            bob.step(Some(&msg))
        } else {
            alice.step(Some(&msg))
        })
        .unwrap()
        {
            StepOutput::Send(reply) => {
                wire.push(reply.encode());
                link.send_frame(to, reply, now).unwrap();
                to = to.peer();
            }
            StepOutput::Established | StepOutput::Wait => break,
        }
    }
    assert!(alice.is_established() && bob.is_established());
    (wire, alice.session_key().unwrap(), now)
}

#[test]
fn step_transcripts_match_run_to_completion_bytes() {
    for variant in [
        StsVariant::Conventional,
        StsVariant::OptimizationI,
        StsVariant::OptimizationII,
    ] {
        for seed in [1u64, 2, 99, 0xFEED] {
            let (mut a1, mut b1) = endpoints(seed, variant);
            let (old_wire, old_key) = drive_callbacks(&mut a1, &mut b1);

            let (mut a2, mut b2) = endpoints(seed, variant);
            let (new_wire, new_key, end) = drive_transport(&mut a2, &mut b2, 1500);

            assert_eq!(old_wire, new_wire, "seed {seed}: bytes must be identical");
            assert_eq!(old_key, new_key, "seed {seed}: keys must agree");
            // 4 messages × 1.5 ms of link latency actually elapsed.
            assert!(end >= 4 * 1500);
        }
    }
}

#[test]
fn run_handshake_driver_matches_both() {
    let (mut a1, mut b1) = endpoints(7, StsVariant::Conventional);
    let transcript = run_handshake(&mut a1, &mut b1).unwrap();
    let driver_wire: Vec<Vec<u8>> = transcript
        .messages()
        .iter()
        .map(|m| m.bytes.clone())
        .collect();

    let (mut a2, mut b2) = endpoints(7, StsVariant::Conventional);
    let (manual_wire, key, _) = drive_transport(&mut a2, &mut b2, 0);
    assert_eq!(driver_wire, manual_wire);
    assert_eq!(a1.session_key().unwrap(), key);
    assert_eq!(transcript.total_bytes(), 491); // Table II
}

#[test]
fn latency_does_not_change_bytes() {
    let runs: Vec<Vec<Vec<u8>>> = [0u64, 10, 100_000]
        .iter()
        .map(|&lat| {
            let (mut a, mut b) = endpoints(31, StsVariant::Conventional);
            drive_transport(&mut a, &mut b, lat).0
        })
        .collect();
    assert_eq!(runs[0], runs[1]);
    assert_eq!(runs[0], runs[2]);
}
