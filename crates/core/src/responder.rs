//! The STS responder (BOB in the paper's Fig. 2).

use crate::auth::{
    auth_response, verify_response_hinted, ReconstructionHint, DIR_INITIATOR, DIR_RESPONDER,
};
use crate::{StsConfig, KDF_LABEL};
use ecq_cert::{DeviceId, ImplicitCert};
use ecq_crypto::zeroize::Zeroize;
use ecq_crypto::HmacDrbg;
use ecq_p256::ecdh;
use ecq_p256::encoding::{decode_raw, encode_raw};
use ecq_p256::point::mul_generator_ct;
use ecq_p256::scalar::Scalar;
use ecq_proto::{
    Credentials, Endpoint, FieldKind, Message, OpTrace, PrimitiveOp, ProtocolError, Role,
    SessionKey, StsPhase, WireField,
};

#[derive(Debug)]
enum State {
    AwaitA1,
    AwaitA2,
    Established,
    Failed,
}

/// Responder-side STS state machine.
#[derive(Debug)]
pub struct StsResponder {
    creds: Credentials,
    config: StsConfig,
    rng: HmacDrbg,
    ephemeral: Option<(Scalar, [u8; 64])>,
    peer_hint: Option<ReconstructionHint>,
    peer_id: Option<Vec<u8>>,
    peer_xg: Option<[u8; 64]>,
    session: Option<SessionKey>,
    state: State,
    trace: OpTrace,
}

impl StsResponder {
    /// Creates a responder. The ephemeral key is drawn lazily on `A1`
    /// (the responder's Op1 runs after the request arrives — Fig. 2).
    pub fn new(creds: Credentials, config: StsConfig, rng: &mut HmacDrbg) -> Self {
        StsResponder {
            creds,
            config,
            rng: HmacDrbg::new(&rng.bytes32(), b"sts-responder-session"),
            ephemeral: None,
            peer_hint: None,
            peer_id: None,
            peer_xg: None,
            session: None,
            state: State::AwaitA1,
            trace: OpTrace::new(),
        }
    }

    /// Installs a cached eq. (1) evaluation for the expected peer.
    ///
    /// When the initiator's certificate matches the hint, the Op2
    /// public-key reconstruction is skipped (and not traced); a
    /// mismatched hint silently falls back to the full reconstruction.
    #[must_use]
    pub fn with_peer_hint(mut self, hint: ReconstructionHint) -> Self {
        self.peer_hint = Some(hint);
        self
    }

    fn handle_a1(&mut self, msg: &Message) -> Result<Option<Message>, ProtocolError> {
        let id_a = msg.field(FieldKind::Id)?.to_vec();
        let xg_a_bytes: [u8; 64] = msg
            .field(FieldKind::EphemeralPoint)?
            .try_into()
            .map_err(|_| ProtocolError::Decode)?;
        let xg_a = decode_raw(&xg_a_bytes)?;

        // Op1: our own ephemeral point XG_B.
        self.trace
            .record(StsPhase::Op1Request, PrimitiveOp::RandomBytes { bytes: 32 });
        self.trace
            .record(StsPhase::Op1Request, PrimitiveOp::EphemeralKeyGen);
        let x_b = Scalar::random(&mut self.rng);
        let xg_b_bytes = encode_raw(&mul_generator_ct(&x_b));

        // Op2: KPM = X_B · XG_A; KS = KDF(KPM, XG_A ‖ XG_B).
        self.trace
            .record(StsPhase::Op2KeyDerivation, PrimitiveOp::EcdhDerive);
        let premaster = ecdh::shared_secret(&x_b, &xg_a)?;
        let salt = [xg_a_bytes.as_slice(), xg_b_bytes.as_slice()].concat();
        self.trace
            .record(StsPhase::Op2KeyDerivation, PrimitiveOp::Kdf);
        // `premaster` wipes itself when it drops at the end of this
        // scope; only the derived session key survives.
        let ks = SessionKey::derive(premaster.as_slice(), &salt, KDF_LABEL);

        // Op3: Resp_B = E_KS(sign(Prk_B, XG_B ‖ XG_A)).
        let resp_b = auth_response(
            &ks,
            &self.creds.keys.private,
            &xg_b_bytes,
            &xg_a_bytes,
            DIR_RESPONDER,
            &mut self.trace,
        );

        self.ephemeral = Some((x_b, xg_b_bytes));
        self.peer_id = Some(id_a);
        self.peer_xg = Some(xg_a_bytes);
        self.session = Some(ks);
        self.state = State::AwaitA2;

        Ok(Some(Message::new(
            "B1",
            vec![
                WireField::new(FieldKind::Id, self.creds.id.as_bytes().to_vec()),
                WireField::new(FieldKind::Cert, self.creds.cert.to_bytes().to_vec()),
                WireField::new(FieldKind::EphemeralPoint, xg_b_bytes.to_vec()),
                WireField::new(FieldKind::Response, resp_b.to_vec()),
            ],
        )))
    }

    fn handle_a2(&mut self, msg: &Message) -> Result<Option<Message>, ProtocolError> {
        let cert_a = ImplicitCert::from_bytes(msg.field(FieldKind::Cert)?)?;
        let resp_a = msg.field(FieldKind::Response)?;

        let claimed = self
            .peer_id
            .as_deref()
            .ok_or(ProtocolError::UnexpectedMessage)?;
        if cert_a.subject.as_bytes() != claimed {
            return Err(ProtocolError::AuthenticationFailed);
        }
        if !cert_a.is_valid_at(self.config.now) {
            return Err(ProtocolError::Cert(ecq_cert::CertError::Expired));
        }

        let ks = self.session.ok_or(ProtocolError::UnexpectedMessage)?;
        let xg_a = self.peer_xg.ok_or(ProtocolError::UnexpectedMessage)?;
        let (_, xg_b) = self.ephemeral.ok_or(ProtocolError::UnexpectedMessage)?;

        verify_response_hinted(
            &ks,
            resp_a,
            &cert_a,
            &self.creds.ca_public,
            &xg_a,
            &xg_b,
            DIR_INITIATOR,
            &mut self.trace,
            self.peer_hint.as_ref(),
        )?;

        self.state = State::Established;
        Ok(Some(Message::new(
            "B2",
            vec![WireField::new(FieldKind::Ack, vec![0x01])],
        )))
    }
}

impl Drop for StsResponder {
    /// Wipes the ephemeral secret `X_B` and any derived session key.
    fn drop(&mut self) {
        if let Some((x_b, _)) = self.ephemeral.as_mut() {
            x_b.zeroize();
        }
        if let Some(key) = self.session.as_mut() {
            key.zeroize();
        }
    }
}

impl Endpoint for StsResponder {
    fn id(&self) -> DeviceId {
        self.creds.id
    }

    fn role(&self) -> Role {
        Role::Responder
    }

    fn start(&mut self) -> Result<Option<Message>, ProtocolError> {
        Ok(None)
    }

    fn on_message(&mut self, msg: &Message) -> Result<Option<Message>, ProtocolError> {
        let result = match self.state {
            State::AwaitA1 => self.handle_a1(msg),
            State::AwaitA2 => self.handle_a2(msg),
            _ => Err(ProtocolError::UnexpectedMessage),
        };
        if result.is_err() {
            self.state = State::Failed;
            // Wipe in place before dropping the Option: clearing it
            // alone would leave the key bytes resident (and invisible
            // to our Drop impl) for the endpoint's remaining lifetime.
            if let Some(key) = self.session.as_mut() {
                key.zeroize();
            }
            self.session = None;
        }
        result
    }

    fn is_established(&self) -> bool {
        matches!(self.state, State::Established)
    }

    fn session_key(&self) -> Result<SessionKey, ProtocolError> {
        match self.state {
            State::Established => self.session.ok_or(ProtocolError::NotEstablished),
            _ => Err(ProtocolError::NotEstablished),
        }
    }

    fn trace(&self) -> &OpTrace {
        &self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecq_cert::ca::CertificateAuthority;

    fn creds(seed: u64) -> (Credentials, HmacDrbg) {
        let mut rng = HmacDrbg::from_seed(seed);
        let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
        let c = Credentials::provision(&ca, DeviceId::from_label("b"), 0, 10, &mut rng).unwrap();
        (c, rng)
    }

    #[test]
    fn responder_starts_silent() {
        let (c, mut rng) = creds(131);
        let mut resp = StsResponder::new(c, StsConfig::default(), &mut rng);
        assert!(resp.start().unwrap().is_none());
        assert!(!resp.is_established());
    }

    #[test]
    fn rejects_garbage_a1() {
        let (c, mut rng) = creds(132);
        let mut resp = StsResponder::new(c, StsConfig::default(), &mut rng);
        // Off-curve ephemeral point must be rejected before any use.
        let msg = Message::new(
            "A1",
            vec![
                WireField::new(FieldKind::Id, vec![0; 16]),
                WireField::new(FieldKind::EphemeralPoint, vec![0; 64]),
            ],
        );
        assert!(resp.on_message(&msg).is_err());
        assert!(!resp.is_established());
        assert!(resp.session_key().is_err());
    }

    #[test]
    fn a2_before_a1_rejected() {
        let (c, mut rng) = creds(133);
        let mut resp = StsResponder::new(c.clone(), StsConfig::default(), &mut rng);
        let msg = Message::new(
            "A2",
            vec![
                WireField::new(FieldKind::Cert, c.cert.to_bytes().to_vec()),
                WireField::new(FieldKind::Response, vec![0; 64]),
            ],
        );
        // In AwaitA1, an A2-shaped message lacks the Id field.
        assert!(resp.on_message(&msg).is_err());
    }
}
