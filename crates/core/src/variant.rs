//! The §IV-C execution-schedule optimizations.
//!
//! The optimizations do not change the transmitted data ("the sent data
//! is identical to the original protocol, but the message and content
//! order vary slightly") — they overlap computation across the two
//! devices:
//!
//! * **Opt. I** (eq. (7)): the initial request already carries the
//!   certificate and `XG`, so the two devices run Op2 concurrently —
//!   the pair pays for Op2 once:
//!   `τ' = 2·T_Op1 + T_Op2 + 2·T_Op3 + 2·T_Op4`.
//! * **Opt. II** (eq. (8)): Op3 is additionally pipelined behind Op2:
//!   `τ'' = 2·T_Op1 + T_Op2 + T_Op3 + 2·T_Op4`.
//!
//! The trade-off (paper §IV-C): failed authentication is only detected
//! after the heavy computations have run, which widens the surface for
//! denial-of-service by unauthenticated peers — [`StsVariant::dos_note`]
//! captures this.
//!
//! For heterogeneous device pairs the paper's eq. (6) applies: the
//! pipelined operation costs `|T_OpAx − T_OpBx|` extra rather than
//! vanishing. The schedule arithmetic lives in `ecq-devices::timing`;
//! this type only names which operations overlap.

use ecq_proto::StsPhase;

/// STS execution-schedule variants (Table I rows STS / opt. I / opt. II).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum StsVariant {
    /// The conventional sequential schedule (eq. (5)).
    #[default]
    Conventional,
    /// Optimization I: Op2 pipelined across devices (eq. (7)).
    OptimizationI,
    /// Optimization II: Op2 and Op3 pipelined (eq. (8)).
    OptimizationII,
}

impl StsVariant {
    /// The STS operations this variant overlaps across the device pair.
    /// For identical devices each overlapped phase is paid once instead
    /// of twice; for different devices eq. (6) applies.
    pub fn pipelined_phases(&self) -> &'static [StsPhase] {
        match self {
            StsVariant::Conventional => &[],
            StsVariant::OptimizationI => &[StsPhase::Op2KeyDerivation],
            StsVariant::OptimizationII => &[StsPhase::Op2KeyDerivation, StsPhase::Op3SignEncrypt],
        }
    }

    /// The paper's label for this variant.
    pub fn label(&self) -> &'static str {
        match self {
            StsVariant::Conventional => "STS",
            StsVariant::OptimizationI => "STS (opt. I)",
            StsVariant::OptimizationII => "STS (opt. II)",
        }
    }

    /// The flexibility cost the paper calls out: with pipelining,
    /// authentication failures surface only after the expensive
    /// operations already ran.
    pub fn dos_note(&self) -> Option<&'static str> {
        match self {
            StsVariant::Conventional => None,
            _ => Some(
                "failed authentication requests are detected only after \
                 the pipelined computations complete; unauthenticated \
                 peers can force wasted work (denial-of-service surface)",
            ),
        }
    }
}

impl core::fmt::Display for StsVariant {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelining_sets() {
        assert!(StsVariant::Conventional.pipelined_phases().is_empty());
        assert_eq!(
            StsVariant::OptimizationI.pipelined_phases(),
            &[StsPhase::Op2KeyDerivation]
        );
        assert_eq!(StsVariant::OptimizationII.pipelined_phases().len(), 2);
    }

    #[test]
    fn only_optimized_variants_carry_dos_note() {
        assert!(StsVariant::Conventional.dos_note().is_none());
        assert!(StsVariant::OptimizationI.dos_note().is_some());
        assert!(StsVariant::OptimizationII.dos_note().is_some());
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(StsVariant::Conventional.label(), "STS");
        assert_eq!(StsVariant::OptimizationI.label(), "STS (opt. I)");
        assert_eq!(StsVariant::OptimizationII.label(), "STS (opt. II)");
    }
}
