//! Session lifecycle management.
//!
//! §II-A of the paper distinguishes the **certificate session** (the
//! validity of the issued certificates, e.g. one vehicle ignition
//! cycle) from the **communication session** (one message exchange).
//! The paper's core complaint about fielded systems is that "either
//! due to the limitations in the system's architecture, constrained
//! nature of the devices, or neglect from the developers", the same
//! session key lives far longer than intended.
//!
//! [`SessionManager`] encodes the discipline: a rekey policy bounds
//! the key's age and use count, certificate expiry forcibly ends the
//! key regardless of policy, and every rekey runs a full fresh STS
//! handshake (cheap to demand here, because the DKD makes rekeying
//! safe — no key material is shared between epochs).

use crate::{establish_hinted, ReconstructionHint, SessionOutcome, StsConfig};
use ecq_crypto::zeroize::Zeroize;
use ecq_crypto::HmacDrbg;
use ecq_proto::{Credentials, ProtocolError, SessionKey};

/// When a session key must be replaced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RekeyPolicy {
    /// Maximum key age in seconds of deployment time.
    pub max_age_secs: u32,
    /// Maximum number of protected messages under one key.
    pub max_messages: u64,
}

impl Default for RekeyPolicy {
    /// One hour or 10 000 messages, whichever first.
    fn default() -> Self {
        RekeyPolicy {
            max_age_secs: 3600,
            max_messages: 10_000,
        }
    }
}

/// Why the manager rekeyed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RekeyReason {
    /// First session of this manager.
    Initial,
    /// The key exceeded [`RekeyPolicy::max_age_secs`].
    Aged,
    /// The key protected [`RekeyPolicy::max_messages`] messages.
    Exhausted,
    /// An explicit caller request.
    Requested,
}

/// Statistics about the current key epoch.
#[derive(Clone, Copy, Debug)]
pub struct EpochInfo {
    /// Deployment time the epoch started.
    pub established_at: u32,
    /// Messages protected so far.
    pub messages_used: u64,
    /// What triggered this epoch.
    pub reason: RekeyReason,
}

/// Manages a long-lived secure relationship between two devices over
/// successive STS communication sessions.
///
/// # Example
///
/// Aged-out keys are replaced by a transparent fresh handshake:
///
/// ```
/// use ecq_cert::{ca::CertificateAuthority, DeviceId};
/// use ecq_crypto::HmacDrbg;
/// use ecq_proto::Credentials;
/// use ecq_sts::{RekeyPolicy, SessionManager, StsConfig};
///
/// let mut rng = HmacDrbg::from_seed(9);
/// let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
/// let bms = Credentials::provision(&ca, DeviceId::from_label("BMS"), 0, 86_400, &mut rng)?;
/// let evcc = Credentials::provision(&ca, DeviceId::from_label("EVCC"), 0, 86_400, &mut rng)?;
///
/// let policy = RekeyPolicy { max_age_secs: 600, max_messages: 1_000 };
/// let mut mgr = SessionManager::new(bms, evcc, policy, StsConfig::default(), rng);
///
/// let k1 = mgr.key_for(0)?;    // first use runs the initial handshake
/// assert_eq!(mgr.key_for(300)?, k1); // same epoch, same key
/// let k2 = mgr.key_for(700)?;  // aged out: fresh STS handshake
/// assert_ne!(k1, k2);
/// assert_eq!(mgr.rekey_count(), 2);
/// # Ok::<(), ecq_proto::ProtocolError>(())
/// ```
#[derive(Debug)]
pub struct SessionManager {
    local: Credentials,
    peer: Credentials,
    policy: RekeyPolicy,
    config: StsConfig,
    rng: HmacDrbg,
    key: Option<SessionKey>,
    epoch: Option<EpochInfo>,
    rekey_count: u64,
    // Cached eq. (1) evaluations `(for the initiator, for the
    // responder)`: the same certificate pair recurs on every rekey of
    // this relationship, so the reconstruction runs once per manager
    // instead of twice per handshake.
    hints: Option<(ReconstructionHint, ReconstructionHint)>,
}

impl SessionManager {
    /// Creates a manager; no session exists until the first
    /// [`Self::key_for`] call.
    ///
    /// Note: `peer` credentials are held here because the simulation
    /// drives both endpoints in-process; a deployment would hold only
    /// the peer's identity and talk over a transport.
    pub fn new(
        local: Credentials,
        peer: Credentials,
        policy: RekeyPolicy,
        config: StsConfig,
        rng: HmacDrbg,
    ) -> Self {
        SessionManager {
            local,
            peer,
            policy,
            config,
            rng,
            key: None,
            epoch: None,
            rekey_count: 0,
            hints: None,
        }
    }

    /// Number of completed handshakes.
    pub fn rekey_count(&self) -> u64 {
        self.rekey_count
    }

    /// The current epoch, if a session exists.
    pub fn epoch(&self) -> Option<&EpochInfo> {
        self.epoch.as_ref()
    }

    fn needs_rekey(&self, now: u32) -> Option<RekeyReason> {
        let epoch = match &self.epoch {
            None => return Some(RekeyReason::Initial),
            Some(e) => e,
        };
        if now.saturating_sub(epoch.established_at) >= self.policy.max_age_secs {
            return Some(RekeyReason::Aged);
        }
        if epoch.messages_used >= self.policy.max_messages {
            return Some(RekeyReason::Exhausted);
        }
        None
    }

    fn rekey(&mut self, now: u32, reason: RekeyReason) -> Result<(), ProtocolError> {
        // Certificate expiry ends the certificate session: no amount
        // of rekeying revives it (phase 2 must re-run).
        if !self.local.cert.is_valid_at(now) || !self.peer.cert.is_valid_at(now) {
            return Err(ProtocolError::Cert(ecq_cert::CertError::Expired));
        }
        let config = StsConfig { now, ..self.config };
        // Lazily cache the eq. (1) reconstructions on the first rekey;
        // every later epoch of this certificate pair reuses them.
        if self.hints.is_none() {
            let for_initiator = ReconstructionHint::compute(&self.peer.cert, &self.local.ca_public)
                .map_err(ProtocolError::Cert)?;
            let for_responder = ReconstructionHint::compute(&self.local.cert, &self.peer.ca_public)
                .map_err(ProtocolError::Cert)?;
            self.hints = Some((for_initiator, for_responder));
        }
        let (hint_a, hint_b) = self.hints.as_ref().expect("hints cached above");
        let mut outcome: SessionOutcome = establish_hinted(
            &self.local,
            &self.peer,
            &config,
            &mut self.rng,
            Some(hint_a),
            Some(hint_b),
        )?;
        // The superseded epoch's key is dead from here on: wipe it.
        if let Some(old) = self.key.as_mut() {
            old.zeroize();
        }
        self.key = Some(outcome.initiator_key);
        // Wipe the outcome's own copies (responder_key is identical to
        // the stored key) so only the copy our Drop wipes survives.
        outcome.initiator_key.zeroize();
        outcome.responder_key.zeroize();
        self.epoch = Some(EpochInfo {
            established_at: now,
            messages_used: 0,
            reason,
        });
        self.rekey_count += 1;
        Ok(())
    }

    /// Returns the session key to protect one message at deployment
    /// time `now`, transparently running a fresh STS handshake when
    /// the policy demands it.
    ///
    /// # Errors
    ///
    /// Handshake errors, or certificate expiry
    /// ([`ecq_cert::CertError::Expired`]) ending the certificate
    /// session.
    pub fn key_for(&mut self, now: u32) -> Result<SessionKey, ProtocolError> {
        if let Some(reason) = self.needs_rekey(now) {
            self.rekey(now, reason)?;
        }
        let epoch = self.epoch.as_mut().expect("epoch exists after rekey");
        epoch.messages_used += 1;
        Ok(self.key.expect("key exists after rekey"))
    }

    /// Forces a fresh session regardless of policy.
    ///
    /// # Errors
    ///
    /// Handshake or certificate-expiry errors.
    pub fn force_rekey(&mut self, now: u32) -> Result<SessionKey, ProtocolError> {
        self.rekey(now, RekeyReason::Requested)?;
        Ok(self.key.expect("key exists after rekey"))
    }
}

impl Drop for SessionManager {
    /// Wipes the current epoch's key when the manager goes away.
    fn drop(&mut self) {
        if let Some(key) = self.key.as_mut() {
            key.zeroize();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecq_cert::ca::CertificateAuthority;
    use ecq_cert::DeviceId;

    fn manager(seed: u64, policy: RekeyPolicy, valid_to: u32) -> SessionManager {
        let mut rng = HmacDrbg::from_seed(seed);
        let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
        let a =
            Credentials::provision(&ca, DeviceId::from_label("a"), 0, valid_to, &mut rng).unwrap();
        let b =
            Credentials::provision(&ca, DeviceId::from_label("b"), 0, valid_to, &mut rng).unwrap();
        SessionManager::new(a, b, policy, StsConfig::default(), rng)
    }

    #[test]
    fn first_use_establishes() {
        let mut m = manager(401, RekeyPolicy::default(), 100_000);
        assert!(m.epoch().is_none());
        let k = m.key_for(0).unwrap();
        assert_eq!(m.rekey_count(), 1);
        assert_eq!(m.epoch().unwrap().reason, RekeyReason::Initial);
        // Stable within the epoch.
        assert_eq!(m.key_for(1).unwrap(), k);
        assert_eq!(m.rekey_count(), 1);
    }

    #[test]
    fn age_triggers_rekey_with_fresh_key() {
        let mut m = manager(
            402,
            RekeyPolicy {
                max_age_secs: 10,
                max_messages: u64::MAX,
            },
            100_000,
        );
        let k1 = m.key_for(0).unwrap();
        let k2 = m.key_for(9).unwrap();
        assert_eq!(k1, k2);
        let k3 = m.key_for(10).unwrap();
        assert_ne!(k1, k3, "aged-out epoch must derive a fresh key");
        assert_eq!(m.epoch().unwrap().reason, RekeyReason::Aged);
        assert_eq!(m.rekey_count(), 2);
    }

    #[test]
    fn message_budget_triggers_rekey() {
        let mut m = manager(
            403,
            RekeyPolicy {
                max_age_secs: u32::MAX,
                max_messages: 3,
            },
            100_000,
        );
        let k1 = m.key_for(0).unwrap();
        assert_eq!(m.key_for(0).unwrap(), k1);
        assert_eq!(m.key_for(0).unwrap(), k1);
        let k2 = m.key_for(0).unwrap(); // 4th message
        assert_ne!(k1, k2);
        assert_eq!(m.epoch().unwrap().reason, RekeyReason::Exhausted);
    }

    #[test]
    fn certificate_expiry_ends_the_certificate_session() {
        let mut m = manager(
            404,
            RekeyPolicy {
                max_age_secs: 10,
                max_messages: u64::MAX,
            },
            50, // certs die at t=50
        );
        assert!(m.key_for(0).is_ok());
        assert!(m.key_for(45).is_ok());
        // Next rekey falls after expiry: the certificate session is over.
        let err = m.key_for(60).unwrap_err();
        assert_eq!(err, ProtocolError::Cert(ecq_cert::CertError::Expired));
    }

    #[test]
    fn forced_rekey() {
        let mut m = manager(405, RekeyPolicy::default(), 100_000);
        let k1 = m.key_for(0).unwrap();
        let k2 = m.force_rekey(1).unwrap();
        assert_ne!(k1, k2);
        assert_eq!(m.epoch().unwrap().reason, RekeyReason::Requested);
    }

    #[test]
    fn every_epoch_key_is_distinct() {
        let mut m = manager(
            406,
            RekeyPolicy {
                max_age_secs: u32::MAX,
                max_messages: 1,
            },
            100_000,
        );
        let mut keys = Vec::new();
        for _ in 0..8 {
            keys.push(*m.key_for(0).unwrap().as_bytes());
        }
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 8);
    }
}
