//! The STS initiator (ALICE in the paper's Fig. 2).

use crate::auth::{
    auth_response, verify_response_hinted, ReconstructionHint, DIR_INITIATOR, DIR_RESPONDER,
};
use crate::{StsConfig, KDF_LABEL};
use ecq_cert::{DeviceId, ImplicitCert};
use ecq_crypto::zeroize::Zeroize;
use ecq_crypto::HmacDrbg;
use ecq_p256::ecdh;
use ecq_p256::encoding::{decode_raw, encode_raw};
use ecq_p256::keys::KeyPair;
use ecq_p256::scalar::Scalar;
use ecq_proto::{
    Credentials, Endpoint, FieldKind, Message, OpTrace, PrimitiveOp, ProtocolError, Role,
    SessionKey, StsPhase, WireField,
};

#[derive(Debug)]
enum State {
    Start,
    AwaitB1,
    AwaitAck,
    Established,
    Failed,
}

/// Initiator-side STS state machine.
#[derive(Debug)]
pub struct StsInitiator {
    creds: Credentials,
    config: StsConfig,
    ephemeral: KeyPair,
    xg_own: [u8; 64],
    peer_hint: Option<ReconstructionHint>,
    session: Option<SessionKey>,
    state: State,
    trace: OpTrace,
}

impl StsInitiator {
    /// Creates an initiator; draws the ephemeral secret eagerly
    /// (the paper's Op1 happens in the request phase).
    pub fn new(creds: Credentials, config: StsConfig, rng: &mut HmacDrbg) -> Self {
        let mut trace = OpTrace::new();
        trace.record(StsPhase::Op1Request, PrimitiveOp::RandomBytes { bytes: 32 });
        trace.record(StsPhase::Op1Request, PrimitiveOp::EphemeralKeyGen);
        let x = Scalar::random(rng);
        let ephemeral = KeyPair::from_private(x);
        let xg_own = encode_raw(&ephemeral.public);
        StsInitiator {
            creds,
            config,
            ephemeral,
            xg_own,
            peer_hint: None,
            session: None,
            state: State::Start,
            trace,
        }
    }

    /// Installs a cached eq. (1) evaluation for the expected peer.
    ///
    /// When the responder's certificate matches the hint, the Op2
    /// public-key reconstruction is skipped (and not traced); a
    /// mismatched hint silently falls back to the full reconstruction.
    #[must_use]
    pub fn with_peer_hint(mut self, hint: ReconstructionHint) -> Self {
        self.peer_hint = Some(hint);
        self
    }

    /// The ephemeral point `XG_A` (for tests and attack simulations).
    pub fn ephemeral_point(&self) -> [u8; 64] {
        self.xg_own
    }

    fn check_peer_cert(&self, cert: &ImplicitCert, claimed: &[u8]) -> Result<(), ProtocolError> {
        if cert.subject.as_bytes() != claimed {
            return Err(ProtocolError::AuthenticationFailed);
        }
        if !cert.is_valid_at(self.config.now) {
            return Err(ProtocolError::Cert(ecq_cert::CertError::Expired));
        }
        Ok(())
    }

    fn handle_b1(&mut self, msg: &Message) -> Result<Option<Message>, ProtocolError> {
        let id_b = msg.field(FieldKind::Id)?;
        let cert_b = ImplicitCert::from_bytes(msg.field(FieldKind::Cert)?)?;
        let xg_b_bytes: [u8; 64] = msg
            .field(FieldKind::EphemeralPoint)?
            .try_into()
            .map_err(|_| ProtocolError::Decode)?;
        let resp_b = msg.field(FieldKind::Response)?;

        self.check_peer_cert(&cert_b, id_b)?;
        let xg_b = decode_raw(&xg_b_bytes)?;

        // Op2: premaster KPM = X_A · XG_B, then KS = KDF(KPM, salt).
        self.trace
            .record(StsPhase::Op2KeyDerivation, PrimitiveOp::EcdhDerive);
        let premaster = ecdh::shared_secret(&self.ephemeral.private, &xg_b)?;
        let salt = [self.xg_own.as_slice(), xg_b_bytes.as_slice()].concat();
        self.trace
            .record(StsPhase::Op2KeyDerivation, PrimitiveOp::Kdf);
        // `premaster` wipes itself when it drops at the end of this
        // scope; only the derived session key survives.
        let ks = SessionKey::derive(premaster.as_slice(), &salt, KDF_LABEL);

        // Op4 (+ the Op2 public-key reconstruction inside, unless a
        // matching hint already carries it).
        verify_response_hinted(
            &ks,
            resp_b,
            &cert_b,
            &self.creds.ca_public,
            &xg_b_bytes,
            &self.xg_own,
            DIR_RESPONDER,
            &mut self.trace,
            self.peer_hint.as_ref(),
        )?;

        // Op3: our own authentication response.
        let resp_a = auth_response(
            &ks,
            &self.creds.keys.private,
            &self.xg_own,
            &xg_b_bytes,
            DIR_INITIATOR,
            &mut self.trace,
        );

        self.session = Some(ks);
        self.state = State::AwaitAck;
        Ok(Some(Message::new(
            "A2",
            vec![
                WireField::new(FieldKind::Cert, self.creds.cert.to_bytes().to_vec()),
                WireField::new(FieldKind::Response, resp_a.to_vec()),
            ],
        )))
    }
}

impl Drop for StsInitiator {
    /// Wipes the ephemeral secret `X_A` and any derived session key:
    /// forward secrecy is only as good as the lifetime of the
    /// ephemerals (paper §V, node-capture row of Table III).
    fn drop(&mut self) {
        self.ephemeral.zeroize();
        if let Some(key) = self.session.as_mut() {
            key.zeroize();
        }
    }
}

impl Endpoint for StsInitiator {
    fn id(&self) -> DeviceId {
        self.creds.id
    }

    fn role(&self) -> Role {
        Role::Initiator
    }

    fn start(&mut self) -> Result<Option<Message>, ProtocolError> {
        match self.state {
            State::Start => {
                self.state = State::AwaitB1;
                Ok(Some(Message::new(
                    "A1",
                    vec![
                        WireField::new(FieldKind::Id, self.creds.id.as_bytes().to_vec()),
                        WireField::new(FieldKind::EphemeralPoint, self.xg_own.to_vec()),
                    ],
                )))
            }
            _ => Err(ProtocolError::UnexpectedMessage),
        }
    }

    fn on_message(&mut self, msg: &Message) -> Result<Option<Message>, ProtocolError> {
        let result = match self.state {
            State::AwaitB1 => self.handle_b1(msg),
            State::AwaitAck => {
                let ack = msg.field(FieldKind::Ack)?;
                if ack == [0x01] {
                    self.state = State::Established;
                    Ok(None)
                } else {
                    Err(ProtocolError::AuthenticationFailed)
                }
            }
            _ => Err(ProtocolError::UnexpectedMessage),
        };
        if result.is_err() {
            self.state = State::Failed;
            // Wipe in place before dropping the Option: clearing it
            // alone would leave the key bytes resident (and invisible
            // to our Drop impl) for the endpoint's remaining lifetime.
            if let Some(key) = self.session.as_mut() {
                key.zeroize();
            }
            self.session = None;
        }
        result
    }

    fn is_established(&self) -> bool {
        matches!(self.state, State::Established)
    }

    fn session_key(&self) -> Result<SessionKey, ProtocolError> {
        match self.state {
            State::Established => self.session.ok_or(ProtocolError::NotEstablished),
            _ => Err(ProtocolError::NotEstablished),
        }
    }

    fn trace(&self) -> &OpTrace {
        &self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecq_cert::ca::CertificateAuthority;

    fn creds(seed: u64) -> (Credentials, HmacDrbg) {
        let mut rng = HmacDrbg::from_seed(seed);
        let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
        let c = Credentials::provision(&ca, DeviceId::from_label("a"), 0, 10, &mut rng).unwrap();
        (c, rng)
    }

    #[test]
    fn start_emits_a1_with_correct_layout() {
        let (c, mut rng) = creds(121);
        let mut init = StsInitiator::new(c, StsConfig::default(), &mut rng);
        let a1 = init.start().unwrap().unwrap();
        assert_eq!(a1.step, "A1");
        assert_eq!(a1.wire_len(), 80);
        assert!(!init.is_established());
        assert!(init.session_key().is_err());
    }

    #[test]
    fn double_start_rejected() {
        let (c, mut rng) = creds(122);
        let mut init = StsInitiator::new(c, StsConfig::default(), &mut rng);
        init.start().unwrap();
        assert!(init.start().is_err());
    }

    #[test]
    fn op1_traced_at_construction() {
        let (c, mut rng) = creds(123);
        let init = StsInitiator::new(c, StsConfig::default(), &mut rng);
        assert_eq!(init.trace().count_op(PrimitiveOp::EphemeralKeyGen), 1);
    }

    #[test]
    fn unexpected_message_fails_cleanly() {
        let (c, mut rng) = creds(124);
        let mut init = StsInitiator::new(c, StsConfig::default(), &mut rng);
        init.start().unwrap();
        let bogus = Message::new("B2", vec![WireField::new(FieldKind::Ack, vec![1])]);
        // AwaitB1 state: an ACK has no Id field -> decode error.
        assert!(init.on_message(&bogus).is_err());
        assert!(!init.is_established());
    }
}
