//! Algorithms 1 and 2 of the paper: the STS implicit-certificate
//! authentication response and its verification.
//!
//! Algorithm 1 (response generation):
//!
//! ```text
//! dsign ← sign(Prk_own, XG_own ‖ XG_peer)
//! Resp  ← encrypt(KS, dsign)
//! ```
//!
//! Algorithm 2 (verification):
//!
//! ```text
//! dsign_X ← decrypt(KS, Resp_X)
//! Q_X     ← hash(Cert_X) · decode(Cert_X) + Q_CA     (eq. (1))
//! Status  ← verify(Q_X, dsign_X)
//! ```
//!
//! Encrypting the signature under the freshly derived `KS` proves key
//! confirmation in the same flight as authentication: a peer that
//! cannot derive `KS` cannot produce a decryptable response.

use ecq_cert::{reconstruct_public_key, CertError, ImplicitCert};
use ecq_crypto::ctr::ctr_blocks;
use ecq_p256::ecdsa::{self, Signature, VerifyStrategy};
use ecq_p256::point::AffinePoint;
use ecq_p256::scalar::Scalar;
use ecq_proto::{OpTrace, PrimitiveOp, ProtocolError, SessionKey, StsPhase};

/// Wire length of the encrypted response (`Resp(64)` in Table II).
pub const RESP_LEN: usize = 64;

/// CTR direction byte for the initiator's `Resp_A`.
pub const DIR_INITIATOR: u8 = 0x0A;
/// CTR direction byte for the responder's `Resp_B`.
pub const DIR_RESPONDER: u8 = 0x0B;

/// Algorithm 1: builds the encrypted authentication response.
///
/// Signs `xg_own ‖ xg_peer` with the ECQV-certified private key and
/// encrypts the 64-byte signature under `KS` (AES-128-CTR, direction-
/// separated keystream).
pub fn auth_response(
    ks: &SessionKey,
    private: &Scalar,
    xg_own: &[u8; 64],
    xg_peer: &[u8; 64],
    direction: u8,
    trace: &mut OpTrace,
) -> [u8; RESP_LEN] {
    let mut msg = [0u8; 128];
    msg[..64].copy_from_slice(xg_own);
    msg[64..].copy_from_slice(xg_peer);

    trace.record(StsPhase::Op3SignEncrypt, PrimitiveOp::EcdsaSign);
    let sig = ecdsa::sign(private, &msg);

    let mut resp = sig.to_bytes();
    trace.record(
        StsPhase::Op3SignEncrypt,
        PrimitiveOp::AesEncrypt {
            blocks: ctr_blocks(RESP_LEN),
        },
    );
    ks.apply_stream(direction, &mut resp);
    resp
}

/// A cached eq. (1) evaluation: an implicit certificate together with
/// the public key reconstructed from it under a specific CA key.
///
/// Reconstruction is a pure function of `(Cert_X, Q_CA)`, so a hint
/// computed once per *certificate* session (e.g. when a
/// [`crate::SessionManager`] first establishes) lets every later rekey
/// handshake of the same pair skip the double-scalar ladder — the
/// dominant cost of Algorithm 2 after the ECDSA verify itself.
///
/// Soundness: the fields are private and [`Self::compute`] is the only
/// constructor, so a hint always holds the genuine reconstruction for
/// the certificate it carries. [`verify_response_hinted`] compares the
/// hint's certificate against the certificate received on the wire and
/// falls back to a fresh reconstruction on any mismatch — a stale or
/// misrouted hint can cost time, never authentication soundness.
#[derive(Clone, Copy, Debug)]
pub struct ReconstructionHint {
    cert: ImplicitCert,
    public: AffinePoint,
}

impl ReconstructionHint {
    /// Evaluates eq. (1) for `cert` under `ca_public` and caches the
    /// result.
    ///
    /// # Errors
    ///
    /// [`CertError`] when the certificate's embedded point or the
    /// derived key is invalid.
    pub fn compute(cert: &ImplicitCert, ca_public: &AffinePoint) -> Result<Self, CertError> {
        Ok(ReconstructionHint {
            cert: *cert,
            public: reconstruct_public_key(cert, ca_public)?,
        })
    }

    /// The cached public key, if the hint was computed for exactly
    /// `cert`.
    fn lookup(&self, cert: &ImplicitCert) -> Option<AffinePoint> {
        (self.cert == *cert).then_some(self.public)
    }
}

/// Algorithm 2: decrypts and verifies a peer's authentication response.
///
/// # Errors
///
/// * [`ProtocolError::AuthenticationFailed`] when the decrypted bytes
///   are not a valid signature over `xg_peer ‖ xg_own` under the
///   implicitly derived public key;
/// * certificate/point errors when eq. (1) cannot be evaluated.
#[allow(clippy::too_many_arguments)] // mirrors Algorithm 2's explicit inputs
pub fn verify_response(
    ks: &SessionKey,
    resp: &[u8],
    peer_cert: &ImplicitCert,
    ca_public: &AffinePoint,
    xg_peer: &[u8; 64],
    xg_own: &[u8; 64],
    direction: u8,
    trace: &mut OpTrace,
) -> Result<(), ProtocolError> {
    verify_response_hinted(
        ks, resp, peer_cert, ca_public, xg_peer, xg_own, direction, trace, None,
    )
}

/// [`verify_response`] with an optional cached eq. (1) result.
///
/// When `hint` matches `peer_cert` the public-key reconstruction (and
/// its trace record) is skipped; any mismatch falls back to the full
/// reconstruction, so a wrong hint only costs the time it was meant to
/// save.
///
/// # Errors
///
/// As [`verify_response`].
#[allow(clippy::too_many_arguments)] // mirrors Algorithm 2's explicit inputs
pub fn verify_response_hinted(
    ks: &SessionKey,
    resp: &[u8],
    peer_cert: &ImplicitCert,
    ca_public: &AffinePoint,
    xg_peer: &[u8; 64],
    xg_own: &[u8; 64],
    direction: u8,
    trace: &mut OpTrace,
    hint: Option<&ReconstructionHint>,
) -> Result<(), ProtocolError> {
    if resp.len() != RESP_LEN {
        return Err(ProtocolError::Decode);
    }
    let mut dsign = [0u8; RESP_LEN];
    dsign.copy_from_slice(resp);
    trace.record(
        StsPhase::Op4DecryptVerify,
        PrimitiveOp::AesDecrypt {
            blocks: ctr_blocks(RESP_LEN),
        },
    );
    ks.apply_stream(direction, &mut dsign);

    let sig = Signature::from_bytes(&dsign).map_err(|_| ProtocolError::AuthenticationFailed)?;

    // eq. (1): Q_X = Hash(Cert_X)·Decode(Cert_X) + Q_CA — or the
    // cached evaluation when the hint carries this exact certificate.
    let q_x = match hint.and_then(|h| h.lookup(peer_cert)) {
        Some(q) => q,
        None => {
            trace.record(
                StsPhase::Op2KeyDerivation,
                PrimitiveOp::PublicKeyReconstruction,
            );
            reconstruct_public_key(peer_cert, ca_public)?
        }
    };

    let mut msg = [0u8; 128];
    msg[..64].copy_from_slice(xg_peer);
    msg[64..].copy_from_slice(xg_own);

    trace.record(StsPhase::Op4DecryptVerify, PrimitiveOp::EcdsaVerify);
    if ecdsa::verify_with(&q_x, &msg, &sig, VerifyStrategy::SeparateMuls) {
        Ok(())
    } else {
        Err(ProtocolError::AuthenticationFailed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecq_cert::ca::CertificateAuthority;
    use ecq_cert::DeviceId;
    use ecq_crypto::HmacDrbg;
    use ecq_proto::Credentials;

    fn creds(seed: u64) -> (Credentials, AffinePoint) {
        let mut rng = HmacDrbg::from_seed(seed);
        let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
        let c = Credentials::provision(&ca, DeviceId::from_label("dev"), 0, 10, &mut rng).unwrap();
        (c, ca.public_key())
    }

    fn ks() -> SessionKey {
        SessionKey::derive(b"premaster", b"salt", b"test")
    }

    #[test]
    fn response_roundtrip() {
        let (c, ca_pub) = creds(111);
        let xg_a = [1u8; 64];
        let xg_b = [2u8; 64];
        let mut trace = OpTrace::new();
        let resp = auth_response(
            &ks(),
            &c.keys.private,
            &xg_a,
            &xg_b,
            DIR_INITIATOR,
            &mut trace,
        );
        verify_response(
            &ks(),
            &resp,
            &c.cert,
            &ca_pub,
            &xg_a,
            &xg_b,
            DIR_INITIATOR,
            &mut trace,
        )
        .expect("valid response verifies");
        assert_eq!(trace.count_op(PrimitiveOp::EcdsaSign), 1);
        assert_eq!(trace.count_op(PrimitiveOp::EcdsaVerify), 1);
    }

    #[test]
    fn wrong_session_key_fails() {
        let (c, ca_pub) = creds(112);
        let xg_a = [1u8; 64];
        let xg_b = [2u8; 64];
        let mut trace = OpTrace::new();
        let resp = auth_response(
            &ks(),
            &c.keys.private,
            &xg_a,
            &xg_b,
            DIR_INITIATOR,
            &mut trace,
        );
        let other_ks = SessionKey::derive(b"different", b"salt", b"test");
        assert!(verify_response(
            &other_ks,
            &resp,
            &c.cert,
            &ca_pub,
            &xg_a,
            &xg_b,
            DIR_INITIATOR,
            &mut trace
        )
        .is_err());
    }

    #[test]
    fn swapped_points_fail() {
        // Signing XG_own ‖ XG_peer and verifying XG_peer ‖ XG_own is
        // order-sensitive: a reflected response must not verify.
        let (c, ca_pub) = creds(113);
        let xg_a = [1u8; 64];
        let xg_b = [2u8; 64];
        let mut trace = OpTrace::new();
        let resp = auth_response(
            &ks(),
            &c.keys.private,
            &xg_a,
            &xg_b,
            DIR_INITIATOR,
            &mut trace,
        );
        assert_eq!(
            verify_response(
                &ks(),
                &resp,
                &c.cert,
                &ca_pub,
                &xg_b,
                &xg_a,
                DIR_INITIATOR,
                &mut trace
            )
            .unwrap_err(),
            ProtocolError::AuthenticationFailed
        );
    }

    #[test]
    fn wrong_direction_keystream_fails() {
        let (c, ca_pub) = creds(114);
        let xg_a = [1u8; 64];
        let xg_b = [2u8; 64];
        let mut trace = OpTrace::new();
        let resp = auth_response(
            &ks(),
            &c.keys.private,
            &xg_a,
            &xg_b,
            DIR_INITIATOR,
            &mut trace,
        );
        assert!(verify_response(
            &ks(),
            &resp,
            &c.cert,
            &ca_pub,
            &xg_a,
            &xg_b,
            DIR_RESPONDER,
            &mut trace
        )
        .is_err());
    }

    #[test]
    fn tampered_certificate_fails() {
        let (c, ca_pub) = creds(115);
        let xg_a = [1u8; 64];
        let xg_b = [2u8; 64];
        let mut trace = OpTrace::new();
        let resp = auth_response(
            &ks(),
            &c.keys.private,
            &xg_a,
            &xg_b,
            DIR_INITIATOR,
            &mut trace,
        );
        let mut cert = c.cert;
        cert.serial ^= 1;
        // Tampered cert ⇒ different hash ⇒ different implicit key ⇒
        // signature no longer verifies.
        assert_eq!(
            verify_response(
                &ks(),
                &resp,
                &cert,
                &ca_pub,
                &xg_a,
                &xg_b,
                DIR_INITIATOR,
                &mut trace
            )
            .unwrap_err(),
            ProtocolError::AuthenticationFailed
        );
    }

    #[test]
    fn truncated_response_rejected() {
        let (c, ca_pub) = creds(116);
        let mut trace = OpTrace::new();
        assert_eq!(
            verify_response(
                &ks(),
                &[0u8; 32],
                &c.cert,
                &ca_pub,
                &[0u8; 64],
                &[1u8; 64],
                DIR_INITIATOR,
                &mut trace
            )
            .unwrap_err(),
            ProtocolError::Decode
        );
    }
}
