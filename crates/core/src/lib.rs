//! Dynamic key derivation for ECQV implicit certificates via the
//! Station-to-Station protocol — the paper's contribution (§IV).
//!
//! # Protocol (Fig. 2 of the paper)
//!
//! ```text
//! ALICE                                   BOB
//!   Gen. XG_A
//!   ── A1: ID_A, XG_A ────────────────────▶
//!                                           Gen. XG_B        (Op1)
//!                                           Derive KS        (Op2)
//!                                           Auth Resp_B      (Op3)
//!   ◀── B1: ID_B, Cert_B, XG_B, Resp_B ────
//!   Derive Q_B, KS                                           (Op2)
//!   Verify Resp_B                                            (Op4)
//!   Auth Resp_A                                              (Op3)
//!   ── A2: Cert_A, Resp_A ────────────────▶
//!                                           Derive Q_A       (Op2')
//!                                           Verify Resp_A    (Op4)
//!   ◀── B2: ACK ────────────────────────────
//! ```
//!
//! * Ephemeral points: `X ∈_R [1, n−1]`, `XG = X·G` (eq. (2)).
//! * Premaster: `KPM = X_A·XG_B = X_B·XG_A` (eq. (3)).
//! * Session key: `KS = KDF(KPM, salt)` with `salt = XG_A ‖ XG_B`
//!   (eq. (4)).
//! * Authentication (Algorithm 1): `Resp = E_KS(sign(Prk, XG_own ‖
//!   XG_peer))`; verification (Algorithm 2) reconstructs the peer's
//!   public key implicitly from its certificate (eq. (1)).
//!
//! Because a fresh `X` is drawn per session, compromise of long-term
//! keys never reveals past session keys: **perfect forward secrecy**,
//! the property every SKD baseline lacks (paper Table III).
//!
//! The [`variant::StsVariant`] type captures the §IV-C pipelining
//! optimizations (eqs. (7)–(8)); they alter the execution schedule the
//! device model computes, not the bytes on the wire.
//!
//! # Example
//!
//! ```
//! use ecq_sts::{establish, StsConfig};
//! use ecq_cert::{ca::CertificateAuthority, DeviceId};
//! use ecq_crypto::HmacDrbg;
//! use ecq_proto::Credentials;
//!
//! let mut rng = HmacDrbg::from_seed(1);
//! let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
//! let alice = Credentials::provision(&ca, DeviceId::from_label("alice"), 0, 100, &mut rng)?;
//! let bob = Credentials::provision(&ca, DeviceId::from_label("bob"), 0, 100, &mut rng)?;
//!
//! let outcome = establish(&alice, &bob, &StsConfig::default(), &mut rng)?;
//! assert_eq!(outcome.initiator_key, outcome.responder_key);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]

pub mod auth;
pub mod group;
pub mod initiator;
pub mod manager;
pub mod responder;
pub mod variant;

pub use auth::ReconstructionHint;
pub use group::GroupSession;
pub use initiator::StsInitiator;
pub use manager::{RekeyPolicy, SessionManager};
pub use responder::StsResponder;
pub use variant::StsVariant;

use ecq_crypto::HmacDrbg;
use ecq_proto::{run_handshake, Credentials, ProtocolError, SessionKey, Transcript};

/// Domain-separation label for the STS KDF.
pub const KDF_LABEL: &[u8] = b"ecqv-sts-v1";

/// Configuration for an STS session.
#[derive(Clone, Copy, Debug)]
pub struct StsConfig {
    /// Deployment timestamp used for certificate validity checks.
    pub now: u32,
    /// Execution-schedule variant (wire format is identical for all).
    pub variant: StsVariant,
}

impl Default for StsConfig {
    fn default() -> Self {
        StsConfig {
            now: 0,
            variant: StsVariant::Conventional,
        }
    }
}

/// Result of a completed STS handshake between two local endpoints.
#[derive(Debug)]
pub struct SessionOutcome {
    /// Key derived by the initiator.
    pub initiator_key: SessionKey,
    /// Key derived by the responder (always equal on success).
    pub responder_key: SessionKey,
    /// Full wire + trace transcript.
    pub transcript: Transcript,
}

/// Convenience driver: runs a complete STS handshake between two
/// credential sets and returns both keys plus the transcript.
///
/// # Errors
///
/// Any [`ProtocolError`] from the handshake (authentication failure,
/// expired certificates, malformed messages).
pub fn establish(
    initiator: &Credentials,
    responder: &Credentials,
    config: &StsConfig,
    rng: &mut HmacDrbg,
) -> Result<SessionOutcome, ProtocolError> {
    establish_hinted(initiator, responder, config, rng, None, None)
}

/// [`establish`] with optional cached eq. (1) evaluations for each
/// side's *peer* certificate: `initiator_hint` covers the responder's
/// certificate and vice versa. Hints skip the per-handshake public-key
/// reconstruction — the win [`SessionManager`] exploits on rekeys,
/// where the same pair of certificates recurs for the session's whole
/// lifetime. Wire bytes and derived keys are identical with or without
/// hints; a mismatched hint falls back to a fresh reconstruction.
///
/// # Errors
///
/// As [`establish`].
pub fn establish_hinted(
    initiator: &Credentials,
    responder: &Credentials,
    config: &StsConfig,
    rng: &mut HmacDrbg,
    initiator_hint: Option<&ReconstructionHint>,
    responder_hint: Option<&ReconstructionHint>,
) -> Result<SessionOutcome, ProtocolError> {
    let mut rng_a = HmacDrbg::new(&rng.bytes32(), b"sts-initiator");
    let mut rng_b = HmacDrbg::new(&rng.bytes32(), b"sts-responder");
    let mut alice = StsInitiator::new(initiator.clone(), *config, &mut rng_a);
    if let Some(hint) = initiator_hint {
        alice = alice.with_peer_hint(*hint);
    }
    let mut bob = StsResponder::new(responder.clone(), *config, &mut rng_b);
    if let Some(hint) = responder_hint {
        bob = bob.with_peer_hint(*hint);
    }
    let transcript = run_handshake(&mut alice, &mut bob)?;
    Ok(SessionOutcome {
        initiator_key: alice.session_key()?,
        responder_key: bob.session_key()?,
        transcript,
    })
}

use ecq_proto::Endpoint as _;

#[cfg(test)]
mod tests {
    use super::*;
    use ecq_cert::ca::CertificateAuthority;
    use ecq_cert::DeviceId;

    fn setup(seed: u64) -> (Credentials, Credentials, HmacDrbg) {
        let mut rng = HmacDrbg::from_seed(seed);
        let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
        let a = Credentials::provision(&ca, DeviceId::from_label("alice"), 0, 100, &mut rng)
            .expect("provision alice");
        let b = Credentials::provision(&ca, DeviceId::from_label("bob"), 0, 100, &mut rng)
            .expect("provision bob");
        (a, b, rng)
    }

    #[test]
    fn handshake_agrees_on_key() {
        let (a, b, mut rng) = setup(101);
        let out = establish(&a, &b, &StsConfig::default(), &mut rng).unwrap();
        assert_eq!(out.initiator_key, out.responder_key);
    }

    #[test]
    fn fresh_keys_every_session_same_certificates() {
        // The DKD property (§II-A): new session ⇒ new key, even with
        // unchanged certificates.
        let (a, b, mut rng) = setup(102);
        let s1 = establish(&a, &b, &StsConfig::default(), &mut rng).unwrap();
        let s2 = establish(&a, &b, &StsConfig::default(), &mut rng).unwrap();
        assert_ne!(s1.initiator_key, s2.initiator_key);
    }

    #[test]
    fn wire_format_matches_table2() {
        let (a, b, mut rng) = setup(103);
        let out = establish(&a, &b, &StsConfig::default(), &mut rng).unwrap();
        let msgs = out.transcript.messages();
        assert_eq!(msgs.len(), 4);
        assert_eq!(msgs[0].wire_len, 80); // A1: ID(16) + XG(64)
        assert_eq!(msgs[1].wire_len, 245); // B1: ID+Cert+XG+Resp
        assert_eq!(msgs[2].wire_len, 165); // A2: Cert+Resp
        assert_eq!(msgs[3].wire_len, 1); // B2: ACK
        assert_eq!(out.transcript.total_bytes(), 491); // Table II: 491 B
    }

    #[test]
    fn hinted_establish_matches_unhinted() {
        // Same coordinator rng seed both ways ⇒ identical wire bytes
        // and keys: the hint only removes redundant eq. (1) work.
        let (a, b, _) = setup(106);
        let cfg = StsConfig::default();
        let hint_a = ReconstructionHint::compute(&b.cert, &a.ca_public).unwrap();
        let hint_b = ReconstructionHint::compute(&a.cert, &b.ca_public).unwrap();
        let mut rng1 = HmacDrbg::from_seed(0xCAFE);
        let plain = establish(&a, &b, &cfg, &mut rng1).unwrap();
        let mut rng2 = HmacDrbg::from_seed(0xCAFE);
        let hinted =
            establish_hinted(&a, &b, &cfg, &mut rng2, Some(&hint_a), Some(&hint_b)).unwrap();
        assert_eq!(plain.initiator_key, hinted.initiator_key);
        assert_eq!(plain.responder_key, hinted.responder_key);
        assert_eq!(
            plain.transcript.total_bytes(),
            hinted.transcript.total_bytes()
        );
    }

    #[test]
    fn stale_hint_falls_back_to_fresh_reconstruction() {
        // A hint computed for the WRONG certificate must not be used:
        // the handshake still succeeds via the fallback path.
        let (a, b, _) = setup(107);
        let cfg = StsConfig::default();
        let wrong_a = ReconstructionHint::compute(&a.cert, &a.ca_public).unwrap();
        let wrong_b = ReconstructionHint::compute(&b.cert, &b.ca_public).unwrap();
        let mut rng = HmacDrbg::from_seed(0xBEEF);
        let out = establish_hinted(&a, &b, &cfg, &mut rng, Some(&wrong_a), Some(&wrong_b)).unwrap();
        assert_eq!(out.initiator_key, out.responder_key);
    }

    #[test]
    fn cross_ca_peers_fail_authentication() {
        let mut rng = HmacDrbg::from_seed(104);
        let ca1 = CertificateAuthority::new(DeviceId::from_label("CA1"), &mut rng);
        let ca2 = CertificateAuthority::new(DeviceId::from_label("CA2"), &mut rng);
        let a =
            Credentials::provision(&ca1, DeviceId::from_label("alice"), 0, 100, &mut rng).unwrap();
        let b =
            Credentials::provision(&ca2, DeviceId::from_label("bob"), 0, 100, &mut rng).unwrap();
        let err = establish(&a, &b, &StsConfig::default(), &mut rng).unwrap_err();
        assert_eq!(err, ProtocolError::AuthenticationFailed);
    }

    #[test]
    fn expired_certificate_rejected() {
        let (a, b, mut rng) = setup(105);
        let config = StsConfig {
            now: 1000, // certs valid 0..=100
            variant: StsVariant::Conventional,
        };
        assert!(establish(&a, &b, &config, &mut rng).is_err());
    }
}
