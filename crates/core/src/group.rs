//! Group session establishment on top of pairwise STS.
//!
//! The paper's related work (Püllen et al. \[8\]) uses implicit
//! certification to establish authenticated *group* keys for
//! in-vehicle networks; the paper itself stops at two-party sessions.
//! This module composes the two ideas: a coordinator (e.g. the BMS or
//! a domain controller) establishes a forward-secret pairwise STS
//! session with every member, then distributes a fresh random group
//! key through those channels.
//!
//! Properties inherited from the pairwise layer:
//!
//! * **group forward secrecy** — the group key is wrapped only under
//!   ephemeral pairwise keys, so leaked long-term keys never reveal
//!   past group keys;
//! * **authenticated membership** — only devices that completed the
//!   ECQV/ECDSA handshake receive a wrap;
//! * **rekey on membership change** — [`GroupSession::rekey`] draws a
//!   fresh key and re-wraps for the surviving members, so departed
//!   members are cut off cryptographically, not administratively.

use crate::{establish, StsConfig};
use ecq_cert::DeviceId;
use ecq_crypto::hmac::hmac_sha256_concat;
use ecq_crypto::zeroize::Zeroize;
use ecq_crypto::HmacDrbg;
use ecq_proto::{Credentials, ProtocolError, SessionKey};

/// Length of the group key in bytes.
pub const GROUP_KEY_LEN: usize = 32;

/// A group key wrap for one member: the key encrypted under the
/// member's pairwise session key plus an authentication tag.
#[derive(Clone, Debug)]
pub struct KeyWrap {
    /// The member this wrap addresses.
    pub member: DeviceId,
    /// Group epoch the wrap belongs to.
    pub epoch: u32,
    /// `E_KS(group_key)` under the member's pairwise key.
    pub wrapped: [u8; GROUP_KEY_LEN],
    /// `HMAC_KS(epoch ‖ wrapped)`.
    pub tag: [u8; 32],
}

/// Direction byte for group-key wraps on the pairwise channel.
const DIR_GROUP: u8 = 0x6B;

fn wrap_key(
    ks: &SessionKey,
    epoch: u32,
    group_key: &[u8; GROUP_KEY_LEN],
    member: DeviceId,
) -> KeyWrap {
    let mut wrapped = *group_key;
    ks.apply_stream(DIR_GROUP ^ (epoch as u8), &mut wrapped);
    let tag = hmac_sha256_concat(
        &ks.mac_key(),
        &[b"group-wrap", &epoch.to_be_bytes(), &wrapped],
    );
    KeyWrap {
        member,
        epoch,
        wrapped,
        tag,
    }
}

/// Member-side unwrap: verifies the tag and decrypts the group key.
///
/// # Errors
///
/// [`ProtocolError::AuthenticationFailed`] on a bad tag.
pub fn unwrap_key(ks: &SessionKey, wrap: &KeyWrap) -> Result<[u8; GROUP_KEY_LEN], ProtocolError> {
    let expect = hmac_sha256_concat(
        &ks.mac_key(),
        &[b"group-wrap", &wrap.epoch.to_be_bytes(), &wrap.wrapped],
    );
    if !ecq_crypto::ct::eq(&expect, &wrap.tag) {
        return Err(ProtocolError::AuthenticationFailed);
    }
    let mut key = wrap.wrapped;
    ks.apply_stream(DIR_GROUP ^ (wrap.epoch as u8), &mut key);
    Ok(key)
}

/// One member's state as the coordinator sees it.
#[derive(Debug)]
struct MemberChannel {
    id: DeviceId,
    pairwise: SessionKey,
}

/// A coordinator-held group session.
#[derive(Debug)]
pub struct GroupSession {
    coordinator: DeviceId,
    members: Vec<MemberChannel>,
    group_key: [u8; GROUP_KEY_LEN],
    epoch: u32,
    rng: HmacDrbg,
    /// Wire bytes spent on handshakes + wraps (accounting).
    pub bytes_on_wire: usize,
}

impl GroupSession {
    /// Establishes a group: pairwise STS with every member, then a
    /// group-key distribution round.
    ///
    /// Returns the session plus the per-member wraps (the "messages"
    /// the coordinator would transmit) so callers can deliver and
    /// unwrap them member-side.
    ///
    /// # Errors
    ///
    /// Any pairwise handshake error aborts group establishment — a
    /// group with an unauthenticated member is worse than no group.
    pub fn establish_group(
        coordinator: &Credentials,
        members: &[Credentials],
        config: &StsConfig,
        mut rng: HmacDrbg,
    ) -> Result<(Self, Vec<KeyWrap>), ProtocolError> {
        let mut channels = Vec::with_capacity(members.len());
        let mut bytes = 0usize;
        for member in members {
            let mut outcome = establish(coordinator, member, config, &mut rng)?;
            bytes += outcome.transcript.total_bytes();
            channels.push(MemberChannel {
                id: member.id,
                pairwise: outcome.initiator_key,
            });
            // Wipe the outcome's own key copies; only the stored
            // pairwise copy (wiped by our Drop) must survive.
            outcome.initiator_key.zeroize();
            outcome.responder_key.zeroize();
        }
        let mut group_key = [0u8; GROUP_KEY_LEN];
        rng.fill_bytes(&mut group_key);
        let mut session = GroupSession {
            coordinator: coordinator.id,
            members: channels,
            group_key,
            epoch: 0,
            rng,
            bytes_on_wire: bytes,
        };
        let wraps = session.distribute();
        Ok((session, wraps))
    }

    /// The coordinator identity.
    pub fn coordinator(&self) -> DeviceId {
        self.coordinator
    }

    /// Current group epoch.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Current member ids.
    pub fn member_ids(&self) -> Vec<DeviceId> {
        self.members.iter().map(|m| m.id).collect()
    }

    /// The current group key (coordinator side).
    pub fn group_key(&self) -> [u8; GROUP_KEY_LEN] {
        self.group_key
    }

    fn distribute(&mut self) -> Vec<KeyWrap> {
        let wraps: Vec<KeyWrap> = self
            .members
            .iter()
            .map(|m| wrap_key(&m.pairwise, self.epoch, &self.group_key, m.id))
            .collect();
        // 32 B wrapped key + 32 B tag + 4 B epoch per member.
        self.bytes_on_wire += wraps.len() * (GROUP_KEY_LEN + 32 + 4);
        wraps
    }

    /// Removes a member and rekeys: draws a fresh group key and
    /// re-wraps it for the survivors. The removed member's pairwise
    /// channel is discarded, so it cannot unwrap the new epoch.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::UnexpectedMessage`] when the member is unknown.
    pub fn remove_and_rekey(&mut self, member: DeviceId) -> Result<Vec<KeyWrap>, ProtocolError> {
        let idx = self
            .members
            .iter()
            .position(|m| m.id == member)
            .ok_or(ProtocolError::UnexpectedMessage)?;
        // Evict wiping by hand, preserving member order: the revoked
        // member's pairwise key is zeroed in place, the survivors
        // shift left over it, and the vacated tail slot's key copy is
        // zeroed before the length shrinks past it (a plain `retain`
        // would leave key bytes resident where `Drop` no longer
        // iterates).
        self.members[idx].pairwise.zeroize();
        let last = self.members.len() - 1;
        for i in idx..last {
            self.members[i] = MemberChannel {
                id: self.members[i + 1].id,
                pairwise: self.members[i + 1].pairwise,
            };
        }
        self.members[last].pairwise.zeroize();
        self.members.truncate(last);
        Ok(self.rekey())
    }

    /// Draws a fresh group key for a new epoch and returns the wraps.
    pub fn rekey(&mut self) -> Vec<KeyWrap> {
        self.rng.fill_bytes(&mut self.group_key);
        self.epoch += 1;
        self.distribute()
    }
}

impl Drop for GroupSession {
    /// Wipes the group key and every member's pairwise key.
    fn drop(&mut self) {
        self.group_key.zeroize();
        for member in &mut self.members {
            member.pairwise.zeroize();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecq_cert::ca::CertificateAuthority;

    fn fleet(
        seed: u64,
        n: usize,
    ) -> (
        Credentials,
        Vec<Credentials>,
        Vec<SessionKey>,
        Vec<KeyWrap>,
        GroupSession,
    ) {
        let mut rng = HmacDrbg::from_seed(seed);
        let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
        let coord =
            Credentials::provision(&ca, DeviceId::from_label("coord"), 0, 1000, &mut rng).unwrap();
        let members: Vec<Credentials> = (0..n)
            .map(|i| {
                Credentials::provision(
                    &ca,
                    DeviceId::from_label(&format!("ecu{i}")),
                    0,
                    1000,
                    &mut rng,
                )
                .unwrap()
            })
            .collect();

        // Establish; to verify member-side unwrap we re-run pairwise
        // sessions deterministically: GroupSession::establish_group
        // consumes its own rng, so give it a cloneable one.
        let group_rng = HmacDrbg::from_seed(seed ^ 0x6666);
        let verify_rng = HmacDrbg::from_seed(seed ^ 0x6666);
        let (session, wraps) =
            GroupSession::establish_group(&coord, &members, &StsConfig::default(), group_rng)
                .unwrap();

        // Recompute the member-side pairwise keys with the same rng
        // stream (deterministic simulation).
        let mut vr = verify_rng;
        let mut member_keys = Vec::new();
        for member in &members {
            let out = establish(&coord, member, &StsConfig::default(), &mut vr).unwrap();
            member_keys.push(out.responder_key);
        }
        (coord, members, member_keys, wraps, session)
    }

    #[test]
    fn all_members_unwrap_the_same_group_key() {
        let (_, members, member_keys, wraps, session) = fleet(601, 4);
        assert_eq!(wraps.len(), 4);
        for (i, wrap) in wraps.iter().enumerate() {
            assert_eq!(wrap.member, members[i].id);
            let gk = unwrap_key(&member_keys[i], wrap).unwrap();
            assert_eq!(gk, session.group_key());
        }
    }

    #[test]
    fn wrong_pairwise_key_cannot_unwrap() {
        let (_, _, member_keys, wraps, _) = fleet(602, 3);
        // member 0's wrap under member 1's channel key must fail.
        assert_eq!(
            unwrap_key(&member_keys[1], &wraps[0]).unwrap_err(),
            ProtocolError::AuthenticationFailed
        );
    }

    #[test]
    fn tampered_wrap_rejected() {
        let (_, _, member_keys, mut wraps, _) = fleet(603, 2);
        wraps[0].wrapped[5] ^= 1;
        assert!(unwrap_key(&member_keys[0], &wraps[0]).is_err());
        let (_, _, member_keys, mut wraps, _) = fleet(604, 2);
        wraps[0].tag[5] ^= 1;
        assert!(unwrap_key(&member_keys[0], &wraps[0]).is_err());
    }

    #[test]
    fn removed_member_is_cut_off_by_rekey() {
        let (_, members, member_keys, _, mut session) = fleet(605, 3);
        let old_key = session.group_key();
        let new_wraps = session.remove_and_rekey(members[0].id).unwrap();
        assert_ne!(session.group_key(), old_key);
        assert_eq!(session.epoch(), 1);
        assert_eq!(new_wraps.len(), 2);
        // No wrap addresses the removed member…
        assert!(new_wraps.iter().all(|w| w.member != members[0].id));
        // …and its old pairwise key fails on every new wrap.
        for w in &new_wraps {
            assert!(unwrap_key(&member_keys[0], w).is_err());
        }
        // Survivors still unwrap.
        let gk = unwrap_key(&member_keys[1], &new_wraps[0]).unwrap();
        assert_eq!(gk, session.group_key());
    }

    #[test]
    fn removing_unknown_member_errors() {
        let (_, _, _, _, mut session) = fleet(606, 2);
        assert!(session
            .remove_and_rekey(DeviceId::from_label("ghost"))
            .is_err());
    }

    #[test]
    fn epochs_use_distinct_keys() {
        let (_, _, _, _, mut session) = fleet(607, 2);
        let mut keys = vec![session.group_key()];
        for _ in 0..4 {
            session.rekey();
            keys.push(session.group_key());
        }
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 5);
    }

    #[test]
    fn wire_accounting_scales_with_members() {
        let (_, _, _, _, s2) = fleet(608, 2);
        let (_, _, _, _, s4) = fleet(609, 4);
        // 491 B per pairwise handshake + 68 B per wrap.
        assert_eq!(s2.bytes_on_wire, 2 * 491 + 2 * 68);
        assert_eq!(s4.bytes_on_wire, 4 * 491 + 4 * 68);
    }
}
