//! # dynamic-ecqv
//!
//! A full reproduction of *"Establishing Dynamic Secure Sessions for
//! ECQV Implicit Certificates in Embedded Systems"* (Basic, Steger,
//! Kofler — DATE 2023) as a Rust workspace.
//!
//! This facade crate re-exports every layer under a short module name;
//! the underlying workspace crates are all named `ecq_*` (note that
//! `ecq_sts` builds from the `crates/core` directory):
//!
//! * [`crypto`] (`ecq_crypto`) — SHA-256 / HMAC / HKDF / AES-128 /
//!   CMAC / HMAC-DRBG,
//! * [`p256`] (`ecq_p256`) — the curve, ECDSA and ECDH from scratch,
//! * [`cert`] (`ecq_cert`) — SEC4 ECQV implicit certificates,
//! * [`proto`] (`ecq_proto`) — wire model, op traces, endpoint driver,
//! * [`sts`] (`ecq_sts`, from `crates/core`) — **the paper's
//!   contribution**: STS dynamic key derivation for ECQV architectures,
//! * [`baselines`] (`ecq_baselines`) — S-ECDSA, SCIANC, PORAMB
//!   comparison protocols,
//! * [`devices`] (`ecq_devices`) — the four evaluation boards' cost
//!   models,
//! * [`fleet`] (`ecq_fleet`) — fleet-scale provisioning: sharded CA
//!   pool, batch enrollment, concurrent handshakes, rekey epochs over
//!   a deterministic scheduler,
//! * [`simnet`] (`ecq_simnet`) — CAN-FD + ISO 15765-2 network
//!   simulation,
//! * [`service`] (`ecq_service`) — real-socket service mode: CA +
//!   responder daemon over TCP/Unix sockets with a versioned wire
//!   format,
//! * [`bms`] (`ecq_bms`) — the BMS↔EVCC automotive prototype,
//! * [`analysis`] (`ecq_analysis`) — threat model, Table III and
//!   executable attacks.
//!
//! # Quickstart
//!
//! ```
//! use dynamic_ecqv::prelude::*;
//!
//! // Deployment: a CA provisions two devices with implicit certs.
//! let mut rng = HmacDrbg::from_seed(1);
//! let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
//! let alice = Credentials::provision(&ca, DeviceId::from_label("alice"), 0, 3600, &mut rng)?;
//! let bob = Credentials::provision(&ca, DeviceId::from_label("bob"), 0, 3600, &mut rng)?;
//!
//! // Session establishment: STS dynamic key derivation.
//! let session = establish(&alice, &bob, &StsConfig::default(), &mut rng)?;
//! assert_eq!(session.initiator_key, session.responder_key);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]

pub use ecq_analysis as analysis;
pub use ecq_baselines as baselines;
pub use ecq_bms as bms;
pub use ecq_cert as cert;
pub use ecq_crypto as crypto;
pub use ecq_devices as devices;
pub use ecq_fleet as fleet;
pub use ecq_p256 as p256;
pub use ecq_proto as proto;
pub use ecq_service as service;
pub use ecq_simnet as simnet;
pub use ecq_sts as sts;

/// The most common imports in one place.
pub mod prelude {
    pub use ecq_cert::{ca::CertificateAuthority, DeviceId, ImplicitCert};
    pub use ecq_crypto::HmacDrbg;
    pub use ecq_devices::DevicePreset;
    pub use ecq_fleet::{FleetConfig, FleetCoordinator, FleetReport, SweepOptions, TransportKind};
    pub use ecq_proto::{Credentials, ProtocolKind, SessionKey};
    pub use ecq_service::{ServiceClient, ServiceConfig, ServiceDaemon};
    pub use ecq_sts::{establish, StsConfig, StsVariant};
}
