//! The paper's eq. (6): what the STS pipelining optimizations buy when
//! the two devices are NOT identical — e.g. a fast gateway talking to
//! a slow sensor node.
//!
//! ```sh
//! cargo run --example heterogeneous_pairing
//! ```

use dynamic_ecqv::devices::timing::{integrate, pair_total, pipelined_phases};
use dynamic_ecqv::prelude::*;
use dynamic_ecqv::proto::Role;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = HmacDrbg::from_seed(606);
    let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
    let alice = Credentials::provision(&ca, DeviceId::from_label("alice"), 0, 3600, &mut rng)?;
    let bob = Credentials::provision(&ca, DeviceId::from_label("bob"), 0, 3600, &mut rng)?;
    let session = establish(&alice, &bob, &StsConfig::default(), &mut rng)?;
    let transcript = session.transcript;

    println!("STS total time for every device pairing (ms), conventional vs opt. II\n");
    println!(
        "{:<14}{:<14}{:>14}{:>14}{:>14}{:>10}",
        "initiator", "responder", "conventional", "opt. I", "opt. II", "saving"
    );
    for da in DevicePreset::ALL {
        for db in DevicePreset::ALL {
            let ta = integrate(transcript.trace(Role::Initiator), &da.profile());
            let tb = integrate(transcript.trace(Role::Responder), &db.profile());
            let conv = pair_total(&ta, &tb, &[]);
            let opt1 = pair_total(&ta, &tb, pipelined_phases(ProtocolKind::StsOptI));
            let opt2 = pair_total(&ta, &tb, pipelined_phases(ProtocolKind::StsOptII));
            println!(
                "{:<14}{:<14}{:>14.2}{:>14.2}{:>14.2}{:>9.1}%",
                da.profile().name,
                db.profile().name,
                conv,
                opt1,
                opt2,
                (1.0 - opt2 / conv) * 100.0
            );
        }
    }
    println!("\nEq. (6) in action: the saving collapses when one device dwarfs the other —");
    println!("pipelining only removes min(T_A, T_B) per overlapped operation.");
    Ok(())
}
