//! Forward secrecy, demonstrated end-to-end: record traffic today,
//! steal the keys tomorrow — what decrypts?
//!
//! ```sh
//! cargo run --example forward_secrecy_demo
//! ```

use dynamic_ecqv::analysis::attacks::{forward_secrecy, TestDeployment};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("═══ Day 0: a passive eavesdropper records everything ═══\n");

    let mut world_a = TestDeployment::new(0xDECAF);
    let captured_s_ecdsa = forward_secrecy::capture_s_ecdsa(&mut world_a)?;
    println!(
        "recorded an S-ECDSA handshake ({} msgs, {} B) plus {} B of encrypted telemetry",
        captured_s_ecdsa.transcript.step_count(),
        captured_s_ecdsa.transcript.total_bytes(),
        captured_s_ecdsa.ciphertext.len()
    );

    let mut world_b = TestDeployment::new(0xDECAF);
    let captured_sts = forward_secrecy::capture_sts(&mut world_b)?;
    println!(
        "recorded an STS handshake      ({} msgs, {} B) plus {} B of encrypted telemetry",
        captured_sts.transcript.step_count(),
        captured_sts.transcript.total_bytes(),
        captured_sts.ciphertext.len()
    );

    println!("\n═══ Day N: the devices' long-term private keys leak ═══\n");

    let leaked_a = world_a.alice.keys.private;
    match forward_secrecy::s_ecdsa_offline_decrypt(
        &captured_s_ecdsa,
        &leaked_a,
        &world_a.ca.public_key(),
    ) {
        Some(plain) if plain == captured_s_ecdsa.plaintext => {
            println!(
                "S-ECDSA: recorded traffic DECRYPTED → {:?}",
                String::from_utf8_lossy(&plain)
            );
        }
        _ => println!("S-ECDSA: attack failed (unexpected!)"),
    }

    let leaked_b = world_b.alice.keys.private;
    match forward_secrecy::sts_offline_decrypt_attempt(
        &captured_sts,
        &leaked_b,
        &world_b.ca.public_key(),
    ) {
        Some(garbage) if garbage != captured_sts.plaintext => {
            println!(
                "STS:     best offline attempt yields garbage → {:02x?}…",
                &garbage[..12]
            );
            println!("\nThe ephemeral exchange died with the session: forward secrecy holds.");
        }
        _ => println!("STS: decrypted (that would be a bug)"),
    }
    Ok(())
}
