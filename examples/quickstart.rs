//! Quickstart: provision two devices under a CA, establish an STS
//! session, and exchange an encrypted message.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use dynamic_ecqv::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ── Phase 1+2 (paper Fig. 1): deployment and certificate derivation.
    let mut rng = HmacDrbg::from_seed(2024);
    let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
    let alice = Credentials::provision(&ca, DeviceId::from_label("alice"), 0, 86_400, &mut rng)?;
    let bob = Credentials::provision(&ca, DeviceId::from_label("bob"), 0, 86_400, &mut rng)?;
    println!("provisioned alice & bob under {}", ca.id());
    println!(
        "alice's implicit certificate: {} bytes, serial {}",
        alice.cert.to_bytes().len(),
        alice.cert.serial
    );

    // Anyone can derive alice's public key from her cert — eq. (1).
    let derived = dynamic_ecqv::cert::reconstruct_public_key(&alice.cert, &ca.public_key())?;
    assert_eq!(derived, alice.keys.public);
    println!("implicit public-key derivation (eq. 1) matches alice's reconstructed key");

    // ── Phase 3: session establishment with the STS dynamic KD.
    let session = establish(&alice, &bob, &StsConfig::default(), &mut rng)?;
    assert_eq!(session.initiator_key, session.responder_key);
    println!(
        "\nSTS handshake complete: {} messages, {} bytes on the wire",
        session.transcript.step_count(),
        session.transcript.total_bytes()
    );
    println!("agreed session key: {:?}", session.initiator_key);

    // Use the session: encrypt a message alice → bob.
    let mut message = *b"hello over the encrypted session!";
    session.initiator_key.apply_stream(0x01, &mut message);
    println!("ciphertext: {:02x?}…", &message[..8]);
    session.responder_key.apply_stream(0x01, &mut message);
    println!("bob decrypts: {}", String::from_utf8_lossy(&message));

    // Fresh session ⇒ fresh key (the DKD property).
    let session2 = establish(&alice, &bob, &StsConfig::default(), &mut rng)?;
    assert_ne!(session.initiator_key, session2.initiator_key);
    println!("\nsecond session derives a fresh key — dynamic key derivation confirmed");
    Ok(())
}
