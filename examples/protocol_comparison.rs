//! Compares all seven protocol variants across the paper's four
//! embedded boards: the programmatic version of Tables I–II.
//!
//! ```sh
//! cargo run --example protocol_comparison
//! ```

use dynamic_ecqv::devices::timing::protocol_pair_time;
use dynamic_ecqv::prelude::*;
use dynamic_ecqv::proto::ProtocolError;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = HmacDrbg::from_seed(31337);
    let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
    let alice = Credentials::provision(&ca, DeviceId::from_label("alice"), 0, 3600, &mut rng)?;
    let bob = Credentials::provision(&ca, DeviceId::from_label("bob"), 0, 3600, &mut rng)?;

    println!(
        "{:<16}{:>8}{:>8}   simulated pair time per device (ms)",
        "protocol", "steps", "bytes"
    );
    println!("{}", "-".repeat(100));

    for kind in ProtocolKind::ALL {
        let (transcript, _key) = run(kind, &alice, &bob, &mut rng)?;
        print!(
            "{:<16}{:>8}{:>8}   ",
            kind.label(),
            transcript.step_count(),
            transcript.total_bytes()
        );
        for preset in DevicePreset::ALL {
            let device = preset.profile();
            let ms = protocol_pair_time(kind, &transcript, &device, &device);
            print!("{:>11.1}", ms);
        }
        println!();
    }
    println!(
        "\ncolumns: {}",
        DevicePreset::ALL
            .iter()
            .map(|p| p.profile().name)
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("(STS opt. rows transmit the same bytes; only the schedule differs — §V-B)");
    Ok(())
}

fn run(
    kind: ProtocolKind,
    alice: &Credentials,
    bob: &Credentials,
    rng: &mut HmacDrbg,
) -> Result<(dynamic_ecqv::proto::Transcript, SessionKey), ProtocolError> {
    use dynamic_ecqv::baselines::{establish_poramb, establish_s_ecdsa, establish_scianc};
    match kind {
        ProtocolKind::Sts | ProtocolKind::StsOptI | ProtocolKind::StsOptII => {
            let out = establish(alice, bob, &StsConfig::default(), rng)?;
            Ok((out.transcript, out.initiator_key))
        }
        ProtocolKind::SEcdsa => {
            let out = establish_s_ecdsa(alice, bob, 0, false, rng)?;
            Ok((out.transcript, out.initiator_key))
        }
        ProtocolKind::SEcdsaExt => {
            let out = establish_s_ecdsa(alice, bob, 0, true, rng)?;
            Ok((out.transcript, out.initiator_key))
        }
        ProtocolKind::Scianc => {
            let out = establish_scianc(alice, bob, 0, rng)?;
            Ok((out.transcript, out.initiator_key))
        }
        ProtocolKind::Poramb => {
            let pairwise = rng.bytes32();
            let out = establish_poramb(alice, bob, &pairwise, 0, rng)?;
            Ok((out.transcript, out.initiator_key))
        }
    }
}
