//! The automotive scenario of the paper's §V-C: a BMS and an EVCC
//! (both S32K144-class ECUs) establish a secure session over CAN-FD
//! with ISO-TP fragmentation, then stream encrypted battery telemetry.
//!
//! ```sh
//! cargo run --example bms_session
//! ```

use dynamic_ecqv::bms::emulator::run_monitoring;
use dynamic_ecqv::bms::BmsScenario;
use dynamic_ecqv::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = BmsScenario::new(0xB2B);

    println!("BMS ↔ EVCC secure session over CAN-FD (paper §V-C)\n");
    for kind in [ProtocolKind::Sts, ProtocolKind::SEcdsa] {
        let report = scenario.run_handshake(kind)?;
        println!("═══ {} ═══", kind.label());
        print!("{}", report.timeline.render());
        println!(
            "bus: {:.3} ms across {} handshake bytes\n",
            report.bus_ms, report.handshake_bytes
        );
    }

    let sts = scenario.run_handshake(ProtocolKind::Sts)?;
    let se = scenario.run_handshake(ProtocolKind::SEcdsa)?;
    println!(
        "STS costs +{:.1} % over S-ECDSA (paper: +21.67 %) — and buys forward secrecy.",
        (sts.total_ms / se.total_ms - 1.0) * 100.0
    );

    // Step 3 of Fig. 1: monitoring through the established session.
    let monitoring = run_monitoring(sts.bms_key, sts.evcc_key, 14, 25, 0xCE11);
    println!(
        "\nencrypted monitoring: {} pack scans ({} cells each), {} B, bus {:.2} ms, verified: {}",
        monitoring.scans, 14, monitoring.bytes, monitoring.bus_ms, monitoring.all_verified
    );
    Ok(())
}
