//! A small in-vehicle network (the paper's Fig. 1 generalized): one CA
//! gateway provisions several ECUs; every ECU pair maintains a managed
//! STS session with automatic rekeying.
//!
//! ```sh
//! cargo run --example fleet
//! ```

use dynamic_ecqv::prelude::*;
use dynamic_ecqv::sts::{RekeyPolicy, SessionManager};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = HmacDrbg::from_seed(0xF1EE7);
    let ca = CertificateAuthority::new(DeviceId::from_label("gateway"), &mut rng);

    let names = ["BMS", "EVCC", "inverter", "charger-hmi"];
    let mut fleet = Vec::new();
    for name in names {
        fleet.push(Credentials::provision(
            &ca,
            DeviceId::from_label(name),
            0,
            86_400,
            &mut rng,
        )?);
    }
    println!(
        "gateway provisioned {} ECUs with 101-byte implicit certificates\n",
        fleet.len()
    );

    // Pairwise managed sessions. Storage note (paper §V-D): with STS
    // each ECU stores ONE key pair + the CA key — unlike PORAMB, which
    // would need one pre-shared secret per peer.
    let policy = RekeyPolicy {
        max_age_secs: 600,
        max_messages: 1000,
    };
    let mut managers = Vec::new();
    for i in 0..fleet.len() {
        for j in (i + 1)..fleet.len() {
            managers.push((
                names[i],
                names[j],
                SessionManager::new(
                    fleet[i].clone(),
                    fleet[j].clone(),
                    policy,
                    StsConfig::default(),
                    HmacDrbg::new(&rng.bytes32(), b"pair"),
                ),
            ));
        }
    }

    println!(
        "{:<14}{:<14}{:>10}{:>12}",
        "initiator", "responder", "epochs", "key fp"
    );
    let mut all_keys = Vec::new();
    for (a, b, mgr) in &mut managers {
        // Simulate a day: messages at t=0, t=300 (same epoch), t=700
        // (rekey by age).
        let _ = mgr.key_for(0)?;
        let _ = mgr.key_for(300)?;
        let key = mgr.key_for(700)?;
        let fp = ecq_crypto::sha256::sha256(key.as_bytes());
        println!(
            "{:<14}{:<14}{:>10}{:>10x}{:02x}",
            a,
            b,
            mgr.rekey_count(),
            fp[0],
            fp[1]
        );
        all_keys.push(*key.as_bytes());
    }

    all_keys.sort();
    all_keys.dedup();
    println!(
        "\n{} pairwise sessions, {} distinct keys — no key material shared across pairs",
        managers.len(),
        all_keys.len()
    );
    assert_eq!(all_keys.len(), managers.len());
    Ok(())
}
