#!/usr/bin/env bash
# Tier-1 verification. CI runs exactly these steps, split into jobs:
#
#   ./scripts/verify.sh          # everything (local pre-push default)
#   ./scripts/verify.sh lint     # fmt + clippy + docs       (CI `lint`)
#   ./scripts/verify.sh test     # build + tests + ct suite  (CI `test`)
#   ./scripts/verify.sh fleet    # interleaved fleet smoke   (CI `fleet-smoke`)
#   ./scripts/verify.sh mega     # 1M-device streaming sweep  (CI `fleet-mega`)
#   ./scripts/verify.sh ctlint   # multi-pass static analysis (CI `ctlint`)
#   ./scripts/verify.sh scenario # adversarial conformance    (CI `scenario`)
#   ./scripts/verify.sh service  # socket daemon + load smoke (CI `service`)
#
# `mega` is the hour-scale tier (a full million-device run per thread
# count) and is therefore not part of `all`; CI runs it as its own job
# and `fleet` carries a scaled-down streaming smoke against the same
# baseline so every local run still exercises the bounded-memory gate.
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-all}"

run_test() {
  echo "==> cargo build --release"
  cargo build --release

  echo "==> cargo test -q"
  cargo test -q

  # The constant-time suite (ct/vartime equivalence proptests + the
  # group-op schedule counters) re-runs in release mode: the dev profile
  # keeps debug assertions and different overflow semantics, and the ct
  # guarantees must hold for the optimized code that ships.
  echo "==> cargo test --release -p ecq_p256 (constant-time suite)"
  cargo test --release -q -p ecq_p256
}

run_lint() {
  echo "==> cargo fmt --check"
  cargo fmt --check

  echo "==> cargo clippy -D warnings"
  cargo clippy --workspace --all-targets -- -D warnings

  echo "==> cargo doc -D warnings"
  RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet
}

run_ctlint() {
  # The multi-pass static analyzer: secret-flow, determinism and
  # panic-reach, each against its committed allowlist
  # (ci/ctlint_allow.toml, ci/determinism_allow.toml,
  # ci/panic_allow.toml) — zero unsuppressed findings, every entry
  # justified and live (stale entries fail). The JSON artifact is
  # written before the gate so a red run still uploads its evidence.
  echo "==> ecq_lint --pass all --format json (artifact: ctlint_findings.json)"
  cargo run --release -q -p ecq_lint -- --root . --pass all --format json \
    > ctlint_findings.json || true # the human run below is the gate

  echo "==> ecq_lint --pass all (gate)"
  cargo run --release -q -p ecq_lint -- --root . --pass all

  # The crate's own tests re-prove each finding class against the
  # golden fixtures, property-test the JSON wire format, and drive
  # real handshakes under the schedule counters.
  echo "==> cargo test -q -p ecq_lint"
  cargo test -q -p ecq_lint
}

run_fleet() {
  # The interleaved 1000-device sweep: bit-identical reports across
  # 1/2/8 worker threads, BENCH_fleet.json emitted, and host handshake
  # throughput gated at 20% below the committed baseline.
  echo "==> fleet smoke (interleaved sweep, determinism + perf gate)"
  cargo run --release -q --bin fleet -- --smoke \
    --threads 1,2,8 \
    --json BENCH_fleet.json \
    --baseline ci/BENCH_fleet_baseline.json \
    --gate-pct 20

  # Thread-scaling floor: 8 workers must not fall below 2 (release
  # mode, isolated from the rest of the suite — the test is #[ignore]d
  # under plain `cargo test` because a wall-clock comparison is noise
  # in the parallel debug harness).
  echo "==> fleet thread-scaling assertion (8 threads >= 2 threads)"
  cargo test --release -q -p ecq_fleet --test fleet_smoke -- --ignored

  # Streaming smoke: the bounded-memory pipeline at a CI-friendly
  # scale, gated against the committed million-device baseline. Both
  # throughput and peak RSS are scale-independent in steady state (the
  # admission window, not the fleet, bounds resident session state), so
  # the 50k run meaningfully gates the same numbers the full `mega`
  # tier measures — with extra headroom for the smaller roster.
  echo "==> fleet streaming smoke (bounded-memory pipeline, RSS gate)"
  cargo run --release -q --bin fleet -- --smoke --mega \
    --devices 50000 \
    --threads 1,2 \
    --json BENCH_fleet_stream.json \
    --baseline ci/BENCH_fleet_mega_baseline.json \
    --gate-pct 30

  # Per-primitive trajectory: the specialized backend vs the generic
  # MontCtx reference, recorded as an artifact next to BENCH_fleet.json.
  echo "==> p256 primitive bench (BENCH_p256.json artifact)"
  cargo run --release -q --bin bench_p256 -- --json BENCH_p256.json
}

run_mega() {
  # The full million-device streaming sweep, once per thread count:
  # bit-identical reports across 1/2/8 workers, peak RSS bounded by the
  # admission window (gated against the committed baseline), and
  # throughput recorded honestly — the mega wall-clock includes the
  # lazily produced enrollment, so it gates against its own baseline,
  # never the materialized one. Regenerate with
  #   cargo run --release --bin fleet -- --smoke --mega --threads 1,2,8 \
  #     --write-baseline ci/BENCH_fleet_mega_baseline.json
  echo "==> fleet mega smoke (1,000,000 devices, streaming, RSS + perf gates)"
  cargo run --release -q --bin fleet -- --smoke --mega \
    --threads 1,2,8 \
    --json BENCH_fleet_mega.json \
    --baseline ci/BENCH_fleet_mega_baseline.json \
    --gate-pct 30
}

run_scenario() {
  # The adversarial conformance suite: every named fault scenario must
  # land on its paper-predicted outcome (matching keys, or the exact
  # fail-closed error — never a silent key mismatch, never a session
  # keyed against a revoked certificate).
  echo "==> adversarial conformance suite (analysis)"
  cargo test --release -q -p ecq_analysis --test conformance

  # The scenario catalog through the operator CLI — the same runs a
  # user gets from `fleet --scenario all`.
  echo "==> fleet --scenario all (catalog vs predicted outcomes)"
  cargo run --release -q --bin fleet -- --scenario all

  # Fixed-seed fault matrix: 4 device presets x 3 STS variants under a
  # heavy mixed fault schedule, release mode (#[ignore]d under plain
  # `cargo test` — it is the fuzz-pass tail of the scenario job).
  echo "==> fixed-seed fault matrix (release-mode fuzz pass)"
  cargo test --release -q -p ecq_fleet --test fault_soundness -- --ignored
}

run_service() {
  # Real-socket service mode: the wire-format fuzz gate, the
  # socket-vs-channel transcript equality proptest, the full
  # client/daemon integration suite, and a loopback load smoke with
  # >= 1000 concurrent connections (BENCH_service.json artifact).
  echo "==> wire-format decoder fuzz + golden frame fixtures"
  cargo test --release -q -p ecq_proto --test framing_fuzz --test golden_frames

  echo "==> service integration + transcript byte-equality suite"
  cargo test --release -q -p ecq_service

  echo "==> service load smoke (1000 concurrent loopback connections)"
  cargo run --release -q -p ecq_bench --bin service_load -- \
    --connections 1000 \
    --json BENCH_service.json
}

case "$mode" in
  all)
    run_test
    run_lint
    run_ctlint
    run_fleet
    run_scenario
    run_service
    echo "OK: build, tests, fmt, clippy, docs, ctlint, fleet smoke, scenarios, service all green"
    ;;
  test)
    run_test
    echo "OK: build + tests green"
    ;;
  lint)
    run_lint
    echo "OK: fmt, clippy, docs green"
    ;;
  ctlint)
    run_ctlint
    echo "OK: static analysis green (secret-flow, determinism, panic-reach)"
    ;;
  fleet)
    run_fleet
    echo "OK: fleet smoke green"
    ;;
  mega)
    run_mega
    echo "OK: million-device streaming sweep green"
    ;;
  scenario)
    run_scenario
    echo "OK: adversarial conformance green"
    ;;
  service)
    run_service
    echo "OK: service mode green (fuzz, transcripts, load smoke)"
    ;;
  *)
    echo "usage: $0 [all|lint|test|ctlint|fleet|mega|scenario|service]" >&2
    exit 2
    ;;
esac
