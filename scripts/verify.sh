#!/usr/bin/env bash
# Tier-1 verification: build, test, format, lint. CI runs exactly this
# script; run it locally before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

# The constant-time suite (ct/vartime equivalence proptests + the
# group-op schedule counters) re-runs in release mode: the dev profile
# keeps debug assertions and different overflow semantics, and the ct
# guarantees must hold for the optimized code that ships.
echo "==> cargo test --release -p ecq_p256 (constant-time suite)"
cargo test --release -q -p ecq_p256

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc -D warnings"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

echo "OK: build, tests, fmt, clippy, docs all green"
