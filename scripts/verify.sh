#!/usr/bin/env bash
# Tier-1 verification: build, test, format, lint. CI runs exactly this
# script; run it locally before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc -D warnings"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

echo "OK: build, tests, fmt, clippy, docs all green"
