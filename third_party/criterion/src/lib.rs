//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build container has no access to crates.io, so this crate
//! provides the slice of criterion's API that `crates/bench/benches/*`
//! use: `Criterion`, `benchmark_group` with `sample_size` /
//! `bench_function` / `bench_with_input` / `finish`, `Bencher::iter`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is a simple wall-clock sampler: each benchmark is warmed
//! up, then timed over `sample_size` samples whose per-sample iteration
//! count targets ~2 ms, and the median per-iteration time is printed.
//! Timings are honest but lack criterion's outlier analysis; treat them
//! as the ratio-level signal the bench files document.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` keeps working.
pub use std::hint::black_box;

/// Identifier for a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            repr: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            repr: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.repr)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level harness state.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 100,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) {
        let mut g = self.benchmark_group("");
        g.bench_function(id, f);
        g.finish();
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{}", self.name, id)
        };
        let per_iter = Self::run(self.sample_size, &mut f);
        eprintln!("  {label:<40} {}", format_time(per_iter));
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(&mut self) {}

    /// Run warmup + samples; return the median per-iteration time.
    fn run<F: FnMut(&mut Bencher)>(sample_size: usize, f: &mut F) -> Duration {
        // Warmup and iteration-count calibration: find how many
        // iterations fit in ~2 ms, minimum 1.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let once = b.elapsed.max(Duration::from_nanos(1));
        let per_sample = (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 100_000);

        let mut samples: Vec<Duration> = (0..sample_size.max(1))
            .map(|_| {
                let mut b = Bencher {
                    iters: per_sample as u64,
                    elapsed: Duration::ZERO,
                };
                f(&mut b);
                b.elapsed / per_sample as u32
            })
            .collect();
        samples.sort_unstable();
        samples[samples.len() / 2]
    }
}

fn format_time(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:9.3} s ", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:9.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:9.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns:9} ns")
    }
}

/// Declare a function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare `main` running the listed groups (cargo's `--bench` flag is
/// accepted and ignored).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
