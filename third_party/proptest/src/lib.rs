//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no access to crates.io, so this crate
//! re-implements the slice of proptest's API that the workspace's test
//! suites actually use: the [`proptest!`] macro (with an optional
//! `#![proptest_config(..)]` header), [`prelude`], `any::<T>()`,
//! tuple/range strategies, `prop_map`, [`collection::vec`], and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Generation is deterministic: each test derives its RNG seed from its
//! module path and name, so failures reproduce across runs. Set
//! `PROPTEST_CASES` to override the per-test case count globally.

pub mod test_runner {
    /// Error type a test case body can produce: a hard failure or a
    /// rejected (filtered-out) input from `prop_assume!`.
    #[derive(Debug)]
    pub enum TestCaseError {
        Fail(String),
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Subset of proptest's run configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
        /// Abort after this many `prop_assume!` rejections.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Self::default()
            }
        }

        /// Effective case count, honoring the `PROPTEST_CASES` env var.
        pub fn effective_cases(&self) -> u32 {
            match std::env::var("PROPTEST_CASES") {
                Ok(v) => v.parse().unwrap_or(self.cases),
                Err(_) => self.cases,
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 64,
                max_global_rejects: 4096,
            }
        }
    }

    /// Deterministic splitmix64 generator seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the fully qualified test name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)` (`bound` > 0).
        pub fn below(&mut self, bound: u64) -> u64 {
            // Rejection sampling to avoid modulo bias.
            let zone = u64::MAX - (u64::MAX % bound);
            loop {
                let v = self.next_u64();
                if v < zone {
                    return v % bound;
                }
            }
        }

        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// Value-generation strategy. The real proptest separates value
    /// trees (for shrinking) from generation; this stand-in only
    /// generates, which is all the workspace's suites rely on.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { source: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) source: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        pub(crate) source: S,
        pub(crate) f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.source.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 10000 consecutive values");
        }
    }

    /// Strategy that always yields clones of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                    if span == 0 {
                        // Full-domain u64 range.
                        rng.next_u64() as $t
                    } else {
                        start.wrapping_add(rng.below(span) as $t)
                    }
                }
            }
        )*};
    }
    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    impl Strategy for core::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (self.end - self.start) * rng.unit_f64() as f32
        }
    }

    macro_rules! tuple_strategies {
        ($(($($n:tt $S:ident),+))*) => {$(
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I, 9 J)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Marker strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<A>(core::marker::PhantomData<A>);

    /// The canonical strategy for `A`: uniform over its whole domain.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(core::marker::PhantomData)
    }

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> u128 {
            (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> [T; N] {
            core::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    macro_rules! tuple_arbitrary {
        ($(($($T:ident),+))*) => {$(
            impl<$($T: Arbitrary),+> Arbitrary for ($($T,)+) {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    ($($T::arbitrary(rng),)+)
                }
            }
        )*};
    }
    tuple_arbitrary! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length bounds for [`vec()`], converted from the usual range forms.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_inclusive - self.size.min) as u64 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Run each `#[test] fn name(input in strategy, ...) { .. }` body over
/// deterministically generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (@impl ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let cases = config.effective_cases();
            let mut rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut passed: u32 = 0;
            let mut rejected: u32 = 0;
            while passed < cases {
                $(let $pat = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                let outcome: $crate::test_runner::TestCaseResult = (|| {
                    $body
                    Ok(())
                })();
                match outcome {
                    Ok(()) => passed += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        if rejected > config.max_global_rejects {
                            panic!(
                                "{}: too many prop_assume! rejections ({})",
                                stringify!($name),
                                rejected
                            );
                        }
                    }
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("{}: case {} failed: {}", stringify!($name), passed, msg);
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(stringify!(
                $cond
            )));
        }
    };
}

#[cfg(test)]
mod self_tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(a in 3usize..10, b in 0u8..8, c in 1.0f64..2.0, d in 5u32..=5) {
            prop_assert!((3..10).contains(&a));
            prop_assert!(b < 8);
            prop_assert!((1.0..2.0).contains(&c));
            prop_assert_eq!(d, 5);
        }

        #[test]
        fn vec_lengths_honor_size_range(v in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
        }

        #[test]
        fn assume_rejects_without_failing(x in any::<u64>()) {
            prop_assume!(x.is_multiple_of(2));
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn tuples_and_maps_compose(v in (any::<u8>(), 1u64..9).prop_map(|(a, b)| u64::from(a) + b)) {
            prop_assert!(v >= 1);
        }
    }

    proptest! {
        #[test]
        fn default_config_works(x in any::<u32>()) {
            prop_assert_eq!(u64::from(x) * 2, u64::from(x) + u64::from(x));
        }
    }

    #[test]
    fn determinism_same_name_same_stream() {
        use crate::test_runner::TestRng;
        let mut a = TestRng::from_name("x::y");
        let mut b = TestRng::from_name("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::from_name("x::z");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
